"""Tests for reference-based cluster classification."""

import pytest

from repro.errors import ClusteringError
from repro.cluster.classify import (
    Classification,
    ReferenceDb,
    classification_summary,
    classify_clusters,
)
from repro.cluster.pipeline import MrMCMinH
from repro.datasets.sixteen_s import SixteenSModel, amplicon_reads
from repro.minhash.sketch import SketchingConfig

CONFIG = SketchingConfig(kmer_size=8, num_hashes=48, seed=0)


@pytest.fixture(scope="module")
def model():
    return SixteenSModel(divergence=0.25, seed=0)


@pytest.fixture(scope="module")
def references(model):
    return {f"T{i}": model.gene_for_taxon(f"T{i}") for i in range(4)}


@pytest.fixture(scope="module")
def reads(model):
    out = []
    for i in range(3):  # reads from T0..T2; T3 has no reads
        window = model.variable_window(model.gene_for_taxon(f"T{i}"), region=2, flank=30)
        out.extend(
            amplicon_reads(
                window, 12, label=f"T{i}", id_prefix=f"t{i}",
                mean_length=90, rng=i,
            )
        )
    return out


class TestReferenceDb:
    def test_size_and_contains(self, references):
        db = ReferenceDb(references, CONFIG)
        assert len(db) == 4
        assert "T0" in db and "nope" not in db

    def test_empty_rejected(self):
        with pytest.raises(ClusteringError):
            ReferenceDb({}, CONFIG)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ClusteringError):
            ReferenceDb([("x", "ACGTACGTACGT"), ("x", "ACGTACGTACGT")], CONFIG)

    def test_unsketchable_reference_rejected(self):
        with pytest.raises(ClusteringError, match="sketched"):
            ReferenceDb({"tiny": "ACG"}, CONFIG)

    def test_best_match_self(self, references, model):
        db = ReferenceDb(references, CONFIG)
        from repro.minhash.sketch import compute_sketch
        from repro.seq.records import SequenceRecord

        query = compute_sketch(
            SequenceRecord("q", references["T2"]), CONFIG, CONFIG.make_family()
        )
        name, sim = db.best_match(query)
        assert name == "T2"
        assert sim == pytest.approx(1.0)


class TestClassifyClusters:
    def _run(self, reads):
        run = MrMCMinH(
            kmer_size=CONFIG.kmer_size, num_hashes=CONFIG.num_hashes,
            threshold=0.5, seed=0,
        ).fit(reads)
        return run

    def test_clusters_map_to_true_taxa(self, reads, references):
        run = self._run(reads)
        db = ReferenceDb(references, CONFIG)
        classes = classify_clusters(
            run.assignment, run.sketches, db, min_similarity=0.3, records=reads
        )
        # Each multi-read cluster's assigned reference must match the
        # majority true label of its members.
        truth = {r.read_id: r.label for r in reads}
        correct = 0
        checked = 0
        for label, members in run.assignment.clusters().items():
            if len(members) < 3:
                continue
            majority = max(
                set(truth[m] for m in members),
                key=lambda t: sum(truth[m] == t for m in members),
            )
            checked += 1
            if classes[label].reference == majority:
                correct += 1
        assert checked > 0
        assert correct / checked > 0.7

    def test_orphan_detection(self, model, references):
        # Reads from a taxon missing from the references.
        window = model.variable_window(model.gene_for_taxon("NOVEL"), region=2, flank=30)
        reads = amplicon_reads(window, 15, label="NOVEL", mean_length=90, rng=9)
        run = self._run(reads)
        db = ReferenceDb(references, CONFIG)
        classes = classify_clusters(
            run.assignment, run.sketches, db, min_similarity=0.6, records=reads
        )
        biggest = max(run.assignment.sizes(), key=run.assignment.sizes().get)
        assert classes[biggest].is_orphan

    def test_summary(self, reads, references):
        run = self._run(reads)
        db = ReferenceDb(references, CONFIG)
        classes = classify_clusters(
            run.assignment, run.sketches, db, min_similarity=0.3, records=reads
        )
        summary = classification_summary(classes, run.assignment)
        assert sum(summary.values()) == run.assignment.num_sequences

    def test_validation(self, reads, references):
        run = self._run(reads)
        db = ReferenceDb(references, CONFIG)
        with pytest.raises(ClusteringError):
            classify_clusters(run.assignment, run.sketches, db, min_similarity=2.0)

    def test_classification_dataclass(self):
        c = Classification(cluster=0, reference=None, similarity=0.1, representative="r")
        assert c.is_orphan
        c2 = Classification(cluster=0, reference="T1", similarity=0.9, representative="r")
        assert not c2.is_orphan
