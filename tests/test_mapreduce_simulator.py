"""Tests for the cost model, the discrete-event simulator and the
synthetic workload builder — including the paper's qualitative claims."""

import pytest

from repro.errors import SimulationError
from repro.mapreduce.costmodel import HadoopCostModel, M1_LARGE_COST_MODEL, calibrate
from repro.mapreduce.simulator import ClusterSimulator, ClusterSpec
from repro.mapreduce.types import JobTrace, TaskTrace
from repro.mapreduce.workload import PipelineWorkload, build_pipeline_traces


def simple_trace(num_maps=8, map_cpu=2.0, num_reduces=1, reduce_cpu=1.0):
    trace = JobTrace(job_name="t")
    for i in range(num_maps):
        trace.map_tasks.append(
            TaskTrace(task_id=f"m{i}", kind="map", records_in=100, cpu_seconds=map_cpu)
        )
    for i in range(num_reduces):
        trace.reduce_tasks.append(
            TaskTrace(task_id=f"r{i}", kind="reduce", records_in=100, cpu_seconds=reduce_cpu)
        )
    trace.shuffle_bytes = 1_000_000
    return trace


class TestCostModel:
    def test_measured_cpu_preferred(self):
        model = HadoopCostModel(task_launch_s=1.0, cpu_scale=2.0)
        task = TaskTrace(task_id="m", kind="map", records_in=10, cpu_seconds=3.0)
        assert model.task_duration(task) == pytest.approx(1.0 + 6.0)

    def test_per_record_fallback(self):
        model = HadoopCostModel(task_launch_s=1.0, map_cost_per_record_s=0.01)
        task = TaskTrace(task_id="m", kind="map", records_in=100)
        assert model.task_duration(task) == pytest.approx(1.0 + 1.0)

    def test_nonlocal_penalty(self):
        model = HadoopCostModel(task_launch_s=0.0, hdfs_read_bw=1e6, nonlocal_penalty=2.0)
        task = TaskTrace(task_id="m", kind="map", records_in=0, bytes_in=1_000_000,
                         cpu_seconds=0.0)
        local = model.task_duration(task, local=True)
        remote = model.task_duration(task, local=False)
        assert remote == pytest.approx(local * 2.0)

    def test_shuffle_scales_with_nodes(self):
        model = HadoopCostModel()
        trace = simple_trace()
        assert model.shuffle_duration(trace, 4) == pytest.approx(
            model.shuffle_duration(trace, 2) / 2
        )

    def test_validation(self):
        with pytest.raises(SimulationError):
            HadoopCostModel(job_startup_s=-1)
        with pytest.raises(SimulationError):
            HadoopCostModel(hdfs_read_bw=0)
        with pytest.raises(SimulationError):
            M1_LARGE_COST_MODEL.shuffle_duration(simple_trace(), 0)

    def test_calibrate(self):
        model = calibrate(
            sketch_seconds=2.0, sketch_records=1000, pair_seconds=1.0, pair_count=10_000
        )
        assert model.map_cost_per_record_s == pytest.approx(0.002)
        assert model.pair_cost_s == pytest.approx(1e-4)
        with pytest.raises(SimulationError):
            calibrate(sketch_seconds=1, sketch_records=0, pair_seconds=1, pair_count=1)


class TestClusterSpec:
    def test_slots(self):
        spec = ClusterSpec(num_nodes=4, map_slots_per_node=2, reduce_slots_per_node=1)
        assert spec.total_map_slots == 8
        assert spec.total_reduce_slots == 4

    def test_validation(self):
        with pytest.raises(SimulationError):
            ClusterSpec(num_nodes=0)
        with pytest.raises(SimulationError):
            ClusterSpec(num_nodes=1, map_slots_per_node=0)


class TestSimulator:
    def test_map_waves(self):
        # 8 map tasks of 2s on 2 nodes x 2 slots = 2 waves.
        model = HadoopCostModel(job_startup_s=0, task_launch_s=0, hdfs_read_bw=1e12)
        sim = ClusterSimulator(ClusterSpec(num_nodes=2), model)
        report = sim.simulate_job(simple_trace(num_maps=8, map_cpu=2.0))
        assert report.map_waves == 2
        assert report.map_phase_s == pytest.approx(4.0)

    def test_more_nodes_fewer_waves(self):
        model = HadoopCostModel(job_startup_s=0, task_launch_s=0)
        small = ClusterSimulator(ClusterSpec(num_nodes=2), model)
        large = ClusterSimulator(ClusterSpec(num_nodes=8), model)
        trace = simple_trace(num_maps=16, map_cpu=1.0)
        assert large.simulate_job(trace).map_phase_s < small.simulate_job(trace).map_phase_s

    def test_startup_dominates_small_jobs(self):
        """The Figure 2 small-input effect: node count is irrelevant."""
        trace = simple_trace(num_maps=1, map_cpu=0.5, reduce_cpu=0.1)
        t2 = ClusterSimulator(ClusterSpec(2)).simulate_pipeline([trace]).total_s
        t12 = ClusterSimulator(ClusterSpec(12)).simulate_pipeline([trace]).total_s
        assert t2 / t12 < 1.1

    def test_locality_preference(self):
        model = HadoopCostModel(
            job_startup_s=0, task_launch_s=0, hdfs_read_bw=1e6, nonlocal_penalty=10.0
        )
        sim = ClusterSimulator(ClusterSpec(num_nodes=2, map_slots_per_node=1), model)
        trace = JobTrace(job_name="t")
        for i in range(4):
            trace.map_tasks.append(
                TaskTrace(task_id=f"m{i}", kind="map", records_in=1,
                          bytes_in=1_000_000, cpu_seconds=0.01)
            )
        # All blocks live on both nodes: every task should be local.
        locality = {0: [0, 1, 2, 3], 1: [0, 1, 2, 3]}
        report = sim.simulate_job(trace, block_locality=locality)
        assert report.locality_fraction == 1.0

    def test_pipeline_sums_jobs(self):
        traces = [simple_trace(), simple_trace()]
        report = ClusterSimulator(ClusterSpec(4)).simulate_pipeline(traces)
        assert len(report.jobs) == 2
        assert report.total_s == pytest.approx(sum(j.total_s for j in report.jobs))
        assert report.total_minutes == pytest.approx(report.total_s / 60)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSimulator(ClusterSpec(2)).simulate_pipeline([])


class TestWorkload:
    def test_block_count(self):
        w = PipelineWorkload(num_reads=1000, read_length=1000, block_size=64 * 1024)
        assert w.num_blocks == -(-w.fasta_bytes // (64 * 1024))

    def test_dense_pair_count(self):
        w = PipelineWorkload(num_reads=100, sparse_similarity=False)
        assert w.total_pairs == 100 * 99 // 2

    def test_sparse_pair_count(self):
        w = PipelineWorkload(num_reads=10_000, sparse_similarity=True, candidates_per_row=50)
        assert w.total_pairs == 10_000 * 50

    def test_band_pairs_sum_to_total_dense(self):
        w = PipelineWorkload(num_reads=1000, row_band=137, sparse_similarity=False)
        total = 0
        start = 0
        while start < w.num_reads:
            stop = min(start + w.row_band, w.num_reads)
            total += w.pairs_for_rows(start, stop)
            start = stop
        assert total == w.total_pairs

    def test_traces_structure(self):
        w = PipelineWorkload(num_reads=5000, row_band=1000)
        traces = build_pipeline_traces(w, map_cost_per_record_s=1e-4, pair_cost_s=1e-7)
        names = [t.job_name for t in traces]
        assert names == ["sketch", "similarity", "cluster"]
        sim = traces[1]
        assert sum(t.records_in for t in sim.map_tasks) == 5000
        assert sum(t.records_out for t in sim.map_tasks) == w.total_pairs

    def test_greedy_traces(self):
        w = PipelineWorkload(num_reads=5000, hierarchical=False)
        traces = build_pipeline_traces(w, map_cost_per_record_s=1e-4, pair_cost_s=1e-7)
        assert [t.job_name for t in traces] == ["sketch", "greedy-cluster"]

    def test_validation(self):
        with pytest.raises(SimulationError):
            PipelineWorkload(num_reads=0)
        with pytest.raises(SimulationError):
            PipelineWorkload(num_reads=10, row_band=0)
        with pytest.raises(SimulationError):
            PipelineWorkload(num_reads=10, candidates_per_row=0)
