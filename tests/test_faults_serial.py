"""Chaos tests for the serial runner: retries, backoff, timeouts,
speculation, exactly-once counters and checkpoint/resume."""

import pytest

from repro.errors import FaultError, JobKilledError, TaskFailedError
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import (
    Fault,
    FaultPlan,
    JobCheckpoint,
    RetryPolicy,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runner import SerialRunner
from repro.mapreduce.types import JobConf

pytestmark = pytest.mark.chaos


def tokenize_mapper(key, value):
    for word in value.split():
        yield word, 1


def sum_reducer(key, values):
    yield key, sum(values)


WORDCOUNT = MapReduceJob(
    name="wc", mapper=tokenize_mapper, reducer=sum_reducer, combiner=sum_reducer
)

DOCS = [
    (0, "the quick brown fox"),
    (1, "the lazy dog"),
    (2, "the quick dog jumps"),
    (3, "brown dog brown fox"),
]

CONF = JobConf(num_map_tasks=4, num_reduce_tasks=2)


def clean_result():
    return SerialRunner().run(WORDCOUNT, DOCS, CONF)


class TestRetries:
    def test_scheduled_crash_is_retried_and_output_identical(self):
        plan = FaultPlan(
            schedule={
                ("wc", "map", 1, 1): Fault(kind="crash", reason="boom"),
                ("wc", "reduce", 0, 1): Fault(kind="crash"),
            }
        )
        result = SerialRunner().run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan, retry=RetryPolicy(max_attempts=3)
        )
        assert result.output == clean_result().output
        assert result.counters.get("fault", "task_retries") == 2
        assert result.counters.get("fault", "attempts_failed") == 2
        trace = result.trace
        failed_map = trace.map_tasks[1]
        assert failed_map.attempts == 2
        assert failed_map.retries == 1
        assert "boom" in failed_map.failures[0]
        assert trace.total_attempts == 6 + 2  # 6 tasks, 2 of them retried once
        assert trace.total_retries == 2

    def test_corrupt_partition_detected_and_retried(self):
        plan = FaultPlan(schedule={("wc", "map", 0, 1): Fault(kind="corrupt")})
        result = SerialRunner().run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan, retry=RetryPolicy(max_attempts=2)
        )
        assert result.output == clean_result().output
        assert "checksum mismatch" in result.trace.map_tasks[0].failures[0]

    def test_exhausted_attempts_raise_task_failed(self):
        plan = FaultPlan(
            schedule={
                ("wc", "map", 2, a): Fault(kind="crash") for a in (1, 2, 3)
            }
        )
        with pytest.raises(TaskFailedError, match="failed after 3 attempt"):
            SerialRunner().run(
                WORDCOUNT, DOCS, CONF, fault_plan=plan, retry=RetryPolicy(max_attempts=3)
            )

    def test_user_exception_retried_when_attempts_allow(self):
        calls = []

        def flaky_mapper(key, value):
            calls.append(key)
            if calls.count(key) == 1:
                raise ValueError("transient")
            yield key, value

        job = MapReduceJob(name="flaky", mapper=flaky_mapper, reducer=sum_reducer)
        result = SerialRunner().run(
            job, [(1, 10), (2, 20)], JobConf(num_map_tasks=2), retry=RetryPolicy(max_attempts=2)
        )
        assert dict(result.output) == {1: 10, 2: 20}
        assert result.counters.get("fault", "task_retries") == 2
        assert "ValueError: transient" in result.trace.map_tasks[0].failures[0]

    def test_user_exception_propagates_without_retry_budget(self):
        def bad_mapper(key, value):
            raise ValueError("no retries configured")
            yield  # pragma: no cover

        job = MapReduceJob(name="bad", mapper=bad_mapper, reducer=sum_reducer)
        with pytest.raises(ValueError, match="no retries configured"):
            SerialRunner().run(job, [(1, 1)])

    def test_backoff_sleeps_between_attempts(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.mapreduce.runner.time.sleep", sleeps.append)
        plan = FaultPlan(
            schedule={("wc", "map", 0, a): Fault(kind="crash") for a in (1, 2)}
        )
        SerialRunner().run(
            WORDCOUNT,
            DOCS,
            CONF,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=3, backoff=0.01, backoff_cap=1.0),
        )
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_rate_based_chaos_converges_with_attempt_cap(self):
        plan = FaultPlan(
            seed=7, mapper_crash_rate=0.5, corrupt_rate=0.3, max_faulted_attempts=2
        )
        result = SerialRunner().run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan, retry=RetryPolicy(max_attempts=3)
        )
        assert result.output == clean_result().output


class TestHangsAndSpeculation:
    def test_short_hang_is_just_slow(self):
        plan = FaultPlan(
            schedule={("wc", "map", 0, 1): Fault(kind="hang", delay=0.001)}
        )
        result = SerialRunner().run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, timeout=10.0),
        )
        assert result.output == clean_result().output
        assert result.trace.map_tasks[0].attempts == 1

    def test_hang_past_deadline_abandoned_and_retried(self):
        plan = FaultPlan(
            schedule={("wc", "map", 3, 1): Fault(kind="hang", delay=5.0)}
        )
        result = SerialRunner().run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, timeout=0.01),
        )
        assert result.output == clean_result().output
        task = result.trace.map_tasks[3]
        assert task.attempts == 2
        assert "task_timeout" in task.failures[0]

    def test_straggler_triggers_speculative_win(self):
        # Task 3 hangs far past margin x median of the first three tasks'
        # durations; the backup attempt wins and is recorded as such.
        plan = FaultPlan(
            schedule={("wc", "map", 3, 1): Fault(kind="hang", delay=5.0)}
        )
        result = SerialRunner().run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, speculative_margin=1.5),
        )
        assert result.output == clean_result().output
        task = result.trace.map_tasks[3]
        assert task.speculative_win
        assert task.attempts == 2
        assert "straggler" in task.failures[0]
        assert result.counters.get("fault", "speculative_wins") == 1
        assert result.trace.speculative_wins == 1


class TestExactlyOnce:
    def test_failed_attempt_counters_discarded(self):
        # The mapper bumps a user counter on every attempt; only the
        # winning attempt's increments may land in the job counters.
        attempts_seen = []

        def counting_mapper(key, value, context):
            context.increment("user", "mapper_calls")
            attempts_seen.append(key)
            for word in value.split():
                yield word, 1

        job = MapReduceJob(name="cnt", mapper=counting_mapper, reducer=sum_reducer)
        plan = FaultPlan(
            schedule={("cnt", "map", 0, 1): Fault(kind="corrupt")}
        )
        result = SerialRunner().run(
            job, DOCS, CONF, fault_plan=plan, retry=RetryPolicy(max_attempts=2)
        )
        # 4 splits; split 0 ran twice (5 mapper invocations observed)...
        assert len(attempts_seen) == 5
        # ...but the counter reflects exactly one call per split.
        assert result.counters.get("user", "mapper_calls") == 4


class _CountingMapper:
    """Records every (key) the mapper processes into a shared list."""

    def __init__(self, log):
        self.log = log

    def __call__(self, key, value):
        self.log.append(key)
        for word in value.split():
            yield word, 1


class TestCheckpointResume:
    def test_kill_and_resume_without_reexecution(self, tmp_path):
        ckpt = JobCheckpoint(tmp_path / "ck")
        log = []
        job = MapReduceJob(
            name="wc",
            mapper=_CountingMapper(log),
            reducer=sum_reducer,
            combiner=sum_reducer,
        )

        kill_plan = FaultPlan(kill_job_after_tasks=3)
        with pytest.raises(JobKilledError):
            SerialRunner().run(job, DOCS, CONF, fault_plan=kill_plan, checkpoint=ckpt)
        assert len(ckpt.task_ids()) == 3
        assert log == [0, 1, 2]  # three map tasks completed before the kill

        resumed = SerialRunner().run(job, DOCS, CONF, checkpoint=ckpt)
        # The resumed run re-executed only map task 3 — total mapper calls
        # across both runs equal one pass over the input.
        assert log == [0, 1, 2, 3]
        assert resumed.output == clean_result().output
        assert resumed.counters.get("fault", "tasks_recovered_from_checkpoint") == 3
        assert resumed.trace.recovered_tasks == 3
        assert [t.recovered for t in resumed.trace.map_tasks] == [
            True, True, True, False,
        ]
        # Counters are rebuilt from checkpointed per-task counters, so the
        # job-level totals match a clean run.
        clean = clean_result()
        assert (
            resumed.counters.get("job", "map_output_records")
            == clean.counters.get("job", "map_output_records")
        )

    def test_checkpoint_isolated_per_job_name(self, tmp_path):
        ckpt = JobCheckpoint(tmp_path)
        a = MapReduceJob(name="job-a", mapper=tokenize_mapper, reducer=sum_reducer)
        b = MapReduceJob(name="job-b", mapper=tokenize_mapper, reducer=sum_reducer)
        runner = SerialRunner(checkpoint=ckpt)
        ra = runner.run(a, DOCS, CONF)
        rb = runner.run(b, DOCS, CONF)
        assert ra.output == rb.output
        assert rb.counters.get("fault", "tasks_recovered_from_checkpoint") == 0
        assert len(ckpt.task_ids()) == 12  # 6 tasks per job, distinct ids

    def test_instance_level_defaults_apply(self, tmp_path):
        plan = FaultPlan(schedule={("wc", "map", 0, 1): Fault(kind="crash")})
        runner = SerialRunner(
            fault_plan=plan,
            checkpoint=JobCheckpoint(tmp_path),
            retry=RetryPolicy(max_attempts=2),
        )
        result = runner.run(WORDCOUNT, DOCS, CONF)
        assert result.output == clean_result().output
        assert result.trace.map_tasks[0].attempts == 2

    def test_conf_knobs_drive_policy(self):
        plan = FaultPlan(schedule={("wc", "map", 0, 1): Fault(kind="crash")})
        conf = JobConf(num_map_tasks=4, num_reduce_tasks=2, max_task_attempts=2)
        result = SerialRunner().run(WORDCOUNT, DOCS, conf, fault_plan=plan)
        assert result.output == clean_result().output
        assert result.trace.map_tasks[0].attempts == 2


class TestFaultErrorShape:
    def test_fault_error_carries_task_context(self):
        err = FaultError("boom", task_id="wc-m0001", attempt=2)
        assert "wc-m0001" in str(err)
        assert "attempt 2" in str(err)

    def test_simulator_accounts_for_measured_attempts(self):
        from repro.mapreduce.costmodel import M1_LARGE_COST_MODEL
        from repro.mapreduce.simulator import ClusterSimulator, ClusterSpec

        plan = FaultPlan(
            schedule={("wc", "map", 1, 1): Fault(kind="crash")}
        )
        faulted = SerialRunner().run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan, retry=RetryPolicy(max_attempts=2)
        )
        clean = clean_result()
        sim = ClusterSimulator(ClusterSpec(num_nodes=1), M1_LARGE_COST_MODEL)
        faulted_report = sim.simulate_job(faulted.trace)
        clean_report = sim.simulate_job(clean.trace)
        assert faulted_report.retried_tasks == 1
        assert clean_report.retried_tasks == 0
        # The retried attempt serialises: the modeled map phase of the
        # faulted run cannot be shorter than each task running once.
        assert faulted_report.map_phase_s > 0
