"""Tests for sequence records and FASTA I/O."""

import pytest

from repro.errors import FastaParseError, SequenceError
from repro.seq.fasta import format_fasta, read_fasta, read_fasta_text, write_fasta
from repro.seq.records import SequenceRecord


class TestSequenceRecord:
    def test_uppercases(self):
        rec = SequenceRecord("r1", "acgt")
        assert rec.sequence == "ACGT"

    def test_len(self):
        assert len(SequenceRecord("r1", "ACGTAC")) == 6

    def test_gc(self):
        assert SequenceRecord("r1", "GGCC").gc == 1.0

    def test_empty_sequence_rejected(self):
        with pytest.raises(SequenceError):
            SequenceRecord("r1", "")

    def test_empty_id_rejected(self):
        with pytest.raises(SequenceError):
            SequenceRecord("", "ACGT")

    def test_with_label(self):
        rec = SequenceRecord("r1", "ACGT").with_label("Bacillus")
        assert rec.label == "Bacillus"
        assert rec.read_id == "r1"

    def test_label_not_in_equality(self):
        a = SequenceRecord("r1", "ACGT", label="x")
        b = SequenceRecord("r1", "ACGT", label="y")
        assert a == b


class TestFastaParsing:
    def test_basic(self):
        recs = read_fasta_text(">r1 desc\nACGT\n>r2\nTTTT\n")
        assert [r.read_id for r in recs] == ["r1", "r2"]
        assert recs[0].header == "r1 desc"
        assert recs[0].sequence == "ACGT"

    def test_multiline_sequence(self):
        recs = read_fasta_text(">r1\nACGT\nACGT\nAC\n")
        assert recs[0].sequence == "ACGTACGTAC"

    def test_blank_lines_and_comments(self):
        recs = read_fasta_text("; comment\n\n>r1\n\nACGT\n\n")
        assert len(recs) == 1
        assert recs[0].sequence == "ACGT"

    def test_crlf(self):
        recs = read_fasta_text(">r1\r\nACGT\r\n")
        assert recs[0].sequence == "ACGT"

    def test_sequence_before_header_rejected(self):
        with pytest.raises(FastaParseError, match="before first"):
            read_fasta_text("ACGT\n>r1\nACGT\n")

    def test_empty_record_rejected(self):
        with pytest.raises(FastaParseError, match="no sequence"):
            read_fasta_text(">r1\n>r2\nACGT\n")

    def test_empty_header_rejected(self):
        with pytest.raises(FastaParseError, match="empty FASTA header"):
            read_fasta_text(">\nACGT\n")

    def test_empty_input(self):
        assert read_fasta_text("") == []

    def test_error_carries_line_number(self):
        try:
            read_fasta_text(">r1\nACGT\n>bad\n")
        except FastaParseError as exc:
            assert exc.line_number == 3
        else:
            pytest.fail("expected FastaParseError")


class TestFastaFormatting:
    def test_roundtrip(self):
        recs = [
            SequenceRecord("r1", "ACGT" * 30, header="r1 sample=x"),
            SequenceRecord("r2", "TTTT"),
        ]
        parsed = read_fasta_text(format_fasta(recs))
        assert [r.read_id for r in parsed] == ["r1", "r2"]
        assert parsed[0].sequence == recs[0].sequence
        assert parsed[0].header == "r1 sample=x"

    def test_wrapping(self):
        text = format_fasta([SequenceRecord("r1", "A" * 100)], width=40)
        lines = text.strip().splitlines()
        assert lines[0] == ">r1"
        assert [len(line) for line in lines[1:]] == [40, 40, 20]

    def test_bad_width(self):
        with pytest.raises(FastaParseError):
            format_fasta([SequenceRecord("r1", "ACGT")], width=0)

    def test_empty(self):
        assert format_fasta([]) == ""


class TestFastaFiles:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "x.fa"
        recs = [SequenceRecord("a", "ACGTACGT"), SequenceRecord("b", "GGGGCCCC")]
        write_fasta(recs, path)
        back = read_fasta(path)
        assert [(r.read_id, r.sequence) for r in back] == [
            ("a", "ACGTACGT"),
            ("b", "GGGGCCCC"),
        ]
