"""Tests for the extended Pig dialect (FILTER / DISTINCT / LIMIT /
ORDER BY / UNION) and the LSH index."""

import numpy as np
import pytest

from repro.errors import PigError, PigParseError, SketchError
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.minhash.lsh import LshIndex, all_candidate_pairs
from repro.minhash.sketch import MinHashSketch, SketchingConfig, compute_sketches
from repro.pig import PigEngine, parse_script
from repro.seq.records import SequenceRecord

FASTA = ">r1\nACGTACGT\n>r2\nTTTT\n>r3\nACGTACGT\n>r4\nGGGGGGGGGGGG\n"


@pytest.fixture
def engine():
    hdfs = SimulatedHDFS(3, block_size=4096)
    hdfs.put("/in.fa", FASTA)
    return PigEngine(hdfs)


LOAD = "A = LOAD '/in.fa' USING FastaStorage AS (readid, d, seq, header);\n"


class TestFilter:
    def test_numeric_comparison(self, engine):
        res = engine.run(LOAD + "B = FILTER A BY d > 8;")
        assert [r[0] for r in res.relations["B"].rows] == ["r4"]

    def test_equality_on_string(self, engine):
        res = engine.run(LOAD + "B = FILTER A BY readid == 'r2';")
        assert len(res.relations["B"]) == 1

    def test_all_operators(self, engine):
        # d values: r1=8, r2=4, r3=8, r4=12
        for op, expected in (("==", 2), ("!=", 2), (">=", 3), ("<", 1), ("<=", 3), (">", 1)):
            res = engine.run(LOAD + f"B = FILTER A BY d {op} 8;")
            assert len(res.relations["B"]) == expected, op

    def test_schema_preserved(self, engine):
        res = engine.run(LOAD + "B = FILTER A BY d > 0;")
        assert res.relations["B"].fields == ("readid", "d", "seq", "header")

    def test_non_literal_rhs_rejected(self):
        with pytest.raises(PigParseError, match="literal"):
            parse_script("B = FILTER A BY x == y;")


class TestDistinctLimitOrder:
    def test_distinct(self, engine):
        res = engine.run(
            LOAD
            + "S = FOREACH A GENERATE seq;\n"
            + "D = DISTINCT S;"
        )
        assert len(res.relations["D"]) == 3  # r1/r3 collapse

    def test_limit(self, engine):
        res = engine.run(LOAD + "B = LIMIT A 2;")
        assert [r[0] for r in res.relations["B"].rows] == ["r1", "r2"]

    def test_limit_beyond_size(self, engine):
        res = engine.run(LOAD + "B = LIMIT A 99;")
        assert len(res.relations["B"]) == 4

    def test_order_asc_desc(self, engine):
        res = engine.run(LOAD + "B = ORDER A BY d;")
        assert [r[1] for r in res.relations["B"].rows] == [4, 8, 8, 12]
        res = engine.run(LOAD + "B = ORDER A BY d DESC;")
        assert [r[1] for r in res.relations["B"].rows] == [12, 8, 8, 4]


class TestUnion:
    def test_union_concatenates(self, engine):
        res = engine.run(
            LOAD
            + "B = FILTER A BY d > 8;\n"
            + "C = FILTER A BY d < 8;\n"
            + "U = UNION B, C;"
        )
        assert len(res.relations["U"]) == 2

    def test_arity_mismatch_rejected(self, engine):
        with pytest.raises(PigError, match="arity"):
            engine.run(
                LOAD
                + "S = FOREACH A GENERATE seq;\n"
                + "U = UNION A, S;"
            )

    def test_parse_requires_two_sources(self):
        with pytest.raises(PigParseError):
            parse_script("U = UNION OnlyOne;")


class TestLshIndex:
    def _sketches(self):
        records = [
            SequenceRecord("x1", "ACGTACGTACGTACGTACGT"),
            SequenceRecord("x2", "ACGTACGTACGTACGTACGT"),
            SequenceRecord("y1", "TTGGCCAATTGGCCAATTGG"),
        ]
        return compute_sketches(records, SketchingConfig(kmer_size=4, num_hashes=16, seed=0))

    def test_identical_sequences_are_candidates(self):
        sketches = self._sketches()
        index = LshIndex(num_hashes=16, band_size=4)
        index.insert_all(sketches[:2])
        assert "x1" in index.candidates(sketches[1])
        assert len(index) == 2
        assert "x1" in index

    def test_disjoint_sequences_not_candidates(self):
        sketches = self._sketches()
        index = LshIndex(num_hashes=16, band_size=4)
        index.insert(sketches[0])
        assert index.candidates(sketches[2]) == []

    def test_duplicate_id_rejected(self):
        sketches = self._sketches()
        index = LshIndex(num_hashes=16, band_size=4)
        index.insert(sketches[0])
        with pytest.raises(SketchError, match="already indexed"):
            index.insert(sketches[0])

    def test_width_mismatch_rejected(self):
        index = LshIndex(num_hashes=16, band_size=4)
        bad = MinHashSketch("z", np.arange(8))
        with pytest.raises(SketchError, match="width"):
            index.insert(bad)

    def test_band_divisibility(self):
        with pytest.raises(SketchError):
            LshIndex(num_hashes=16, band_size=5)

    def test_get(self):
        sketches = self._sketches()
        index = LshIndex(num_hashes=16, band_size=4)
        index.insert(sketches[0])
        assert index.get("x1") is sketches[0]
        with pytest.raises(SketchError):
            index.get("nope")

    def test_s_curve_properties(self):
        # Monotone in J, 0 at J=0, 1 at J=1.
        probs = [LshIndex.candidate_probability(j, 5, 10) for j in (0.0, 0.3, 0.7, 1.0)]
        assert probs[0] == 0.0
        assert probs[-1] == 1.0
        assert probs == sorted(probs)

    def test_threshold_matches_half_probability(self):
        t = LshIndex.threshold(5, 10)
        p = LshIndex.candidate_probability(t, 5, 10)
        assert 0.4 < p < 0.8  # the 50% crossing approximation

    def test_all_candidate_pairs(self):
        sketches = self._sketches()
        pairs = all_candidate_pairs(sketches, band_size=4)
        assert ("x1", "x2") in pairs
        assert ("x1", "y1") not in pairs

    def test_empty(self):
        assert all_candidate_pairs([], band_size=4) == set()
