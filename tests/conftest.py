"""Shared test fixtures."""

from __future__ import annotations

import pytest

from repro.minhash.sketch import SketchingConfig, compute_sketches
from repro.seq.records import SequenceRecord


@pytest.fixture
def two_family_records() -> list[SequenceRecord]:
    """Ten records from two obviously distinct sequence families."""
    fam_a = "ACGTACGTAATTCCGG" * 12
    fam_b = "TTGCATGCATGGCCAA" * 12
    out = []
    for i in range(5):
        out.append(SequenceRecord(f"a{i}", fam_a[i : i + 150], label="A"))
        out.append(SequenceRecord(f"b{i}", fam_b[i : i + 150], label="B"))
    return out


@pytest.fixture
def small_config() -> SketchingConfig:
    return SketchingConfig(kmer_size=5, num_hashes=32, seed=1)


@pytest.fixture
def two_family_sketches(two_family_records, small_config):
    return compute_sketches(two_family_records, small_config)
