"""Tests for HDFS input formats (block-boundary record splitting) and
FASTQ parsing/quality trimming."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FastaParseError, HdfsError
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.inputformat import FastaInputFormat, TextInputFormat
from repro.seq.fasta import format_fasta, read_fasta_text
from repro.seq.fastq import (
    FastqRecord,
    decode_qualities,
    encode_qualities,
    fastq_to_fasta,
    read_fastq_text,
)
from repro.seq.records import SequenceRecord


def hdfs_with(text, block_size):
    fs = SimulatedHDFS(3, block_size=block_size, replication=2, seed=0)
    fs.put("/f", text)
    return fs


class TestTextInputFormat:
    def test_all_lines_exactly_once(self):
        lines = [f"line-{i:03d}" for i in range(40)]
        text = "\n".join(lines) + "\n"
        for block_size in (7, 16, 64, 4096):
            fs = hdfs_with(text, block_size)
            fmt = TextInputFormat(fs, "/f")
            collected = [line for _off, line in fmt.read_all()]
            assert collected == lines, f"block_size={block_size}"

    def test_no_duplicates_across_splits(self):
        text = "\n".join(f"x{i}" for i in range(30)) + "\n"
        fs = hdfs_with(text, 11)
        fmt = TextInputFormat(fs, "/f")
        seen = []
        for split in range(fmt.num_splits):
            seen.extend(line for _off, line in fmt.read_split(split))
        assert len(seen) == len(set(seen)) == 30

    def test_offsets_are_byte_positions(self):
        text = "aa\nbbb\ncccc\n"
        fs = hdfs_with(text, 4)
        fmt = TextInputFormat(fs, "/f")
        records = list(fmt.read_all())
        for off, line in records:
            assert text[off : off + len(line)] == line

    def test_split_out_of_range(self):
        fs = hdfs_with("x\n", 16)
        fmt = TextInputFormat(fs, "/f")
        with pytest.raises(HdfsError):
            fmt.read_split(5)

    @given(
        st.lists(st.text(alphabet="abc", min_size=1, max_size=12), min_size=1, max_size=25),
        st.integers(min_value=3, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_reassembly(self, lines, block_size):
        text = "\n".join(lines) + "\n"
        fs = hdfs_with(text, block_size)
        fmt = TextInputFormat(fs, "/f")
        assert [line for _o, line in fmt.read_all()] == lines


class TestFastaInputFormat:
    def _records(self, n=12, seed=0):
        rng = np.random.default_rng(seed)
        return [
            SequenceRecord(
                f"r{i:02d}",
                "".join(rng.choice(list("ACGT"), size=int(rng.integers(20, 90)))),
            )
            for i in range(n)
        ]

    def test_all_records_exactly_once(self):
        records = self._records()
        text = format_fasta(records)
        for block_size in (13, 37, 100, 8192):
            fs = hdfs_with(text, block_size)
            fmt = FastaInputFormat(fs, "/f")
            collected = fmt.read_all()
            assert [(r.read_id, r.sequence) for r in collected] == [
                (r.read_id, r.sequence) for r in records
            ], f"block_size={block_size}"

    def test_splits_partition_records(self):
        records = self._records(n=20, seed=1)
        fs = hdfs_with(format_fasta(records), 61)
        fmt = FastaInputFormat(fs, "/f")
        ids = []
        for split in range(fmt.num_splits):
            ids.extend(r.read_id for r in fmt.read_split(split))
        assert sorted(ids) == sorted(r.read_id for r in records)
        assert len(ids) == len(set(ids))

    def test_single_block(self):
        records = self._records(n=3)
        fs = hdfs_with(format_fasta(records), 1 << 20)
        fmt = FastaInputFormat(fs, "/f")
        assert fmt.num_splits == 1
        assert len(fmt.read_split(0)) == 3

    def test_gt_inside_sequence_not_a_record_start(self):
        # '>' can only start a record at a line start; sequences cannot
        # contain it, but headers can.
        text = ">r1 weird>header\nACGT\n>r2\nTTTT\n"
        fs = hdfs_with(text, 9)
        fmt = FastaInputFormat(fs, "/f")
        ids = [r.read_id for r in fmt.read_all()]
        assert ids == ["r1", "r2"]


class TestFastqParsing:
    FASTQ = "@r1 lib=a\nACGT\n+\nIIII\n@r2\nTTGG\n+r2\n!!!!\n"

    def test_basic(self):
        entries = read_fastq_text(self.FASTQ)
        assert [e.record.read_id for e in entries] == ["r1", "r2"]
        assert entries[0].qualities == (40, 40, 40, 40)
        assert entries[1].qualities == (0, 0, 0, 0)

    def test_quality_roundtrip(self):
        scores = (0, 20, 40, 93)
        assert decode_qualities(encode_qualities(scores)) == scores

    def test_bad_scores(self):
        with pytest.raises(FastaParseError):
            encode_qualities([94])
        with pytest.raises(FastaParseError):
            decode_qualities(chr(32))  # below '!'

    def test_truncated_record(self):
        with pytest.raises(FastaParseError, match="truncated"):
            read_fastq_text("@r1\nACGT\n+\n")

    def test_bad_header(self):
        with pytest.raises(FastaParseError, match="'@'"):
            read_fastq_text("r1\nACGT\n+\nIIII\n")

    def test_length_mismatch(self):
        with pytest.raises(FastaParseError, match="quality"):
            read_fastq_text("@r1\nACGT\n+\nIII\n")


class TestQualityTrimming:
    def make(self, seq, quals):
        return FastqRecord(
            record=SequenceRecord("r", seq), qualities=tuple(quals)
        )

    def test_high_quality_untouched(self):
        entry = self.make("ACGTACGT", [40] * 8)
        assert entry.trimmed().sequence == "ACGTACGT"

    def test_leading_trailing_trim(self):
        entry = self.make("ACGTACGT", [2, 2, 40, 40, 40, 40, 2, 2])
        assert entry.trimmed(min_quality=20).sequence == "GTAC"

    def test_all_bad_returns_none(self):
        entry = self.make("ACGT", [2, 2, 2, 2])
        assert entry.trimmed(min_quality=20) is None

    def test_sliding_window_truncates(self):
        quals = [40] * 10 + [21, 5, 5, 5, 5, 5]
        entry = self.make("A" * 16, quals)
        trimmed = entry.trimmed(min_quality=20, window=4)
        assert len(trimmed.sequence) < 16

    def test_fastq_to_fasta_pipeline(self):
        entries = [
            self.make("ACGTACGTACGTACGTACGTACGTACGTACGT", [40] * 32),
            self.make("TTTT", [40] * 4),          # too short after trim
            self.make("GGGGCCCC", [2] * 8),       # all low quality
        ]
        records = fastq_to_fasta(entries, min_length=10)
        assert len(records) == 1
        assert records[0].sequence.startswith("ACGT")

    def test_mean_quality_filter(self):
        entries = [self.make("ACGTACGTACGT", [10] * 12)]
        assert fastq_to_fasta(entries, min_mean_quality=20, min_quality=5) == []
