"""Tests for the row-partitioned similarity job and the MrMCMinH pipeline."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.cluster.matrix import compute_similarity_matrix, similarity_band_job
from repro.cluster.pipeline import MrMCMinH
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.local import MultiprocessRunner
from repro.minhash.similarity import pairwise_similarity_matrix
from repro.seq.records import SequenceRecord


class TestSimilarityJob:
    def test_matches_direct_computation(self, two_family_sketches):
        direct = pairwise_similarity_matrix(two_family_sketches)
        via_job, result = compute_similarity_matrix(two_family_sketches, num_tasks=3)
        assert np.allclose(direct, via_job)
        assert result.trace is not None
        assert len(result.trace.map_tasks) == 3

    def test_single_task(self, two_family_sketches):
        direct = pairwise_similarity_matrix(two_family_sketches)
        via_job, _ = compute_similarity_matrix(two_family_sketches, num_tasks=1)
        assert np.allclose(direct, via_job)

    def test_more_tasks_than_rows(self, two_family_sketches):
        via_job, _ = compute_similarity_matrix(two_family_sketches, num_tasks=999)
        assert via_job.shape == (len(two_family_sketches),) * 2

    def test_set_estimator(self, two_family_sketches):
        direct = pairwise_similarity_matrix(two_family_sketches, estimator="set")
        via_job, _ = compute_similarity_matrix(
            two_family_sketches, estimator="set", num_tasks=2
        )
        assert np.allclose(direct, via_job)

    def test_validation(self, two_family_sketches):
        with pytest.raises(ClusteringError):
            compute_similarity_matrix([], num_tasks=2)
        with pytest.raises(ClusteringError):
            compute_similarity_matrix(two_family_sketches, num_tasks=0)
        with pytest.raises(ClusteringError):
            similarity_band_job([])


class TestMrMCMinHConstruction:
    def test_defaults(self):
        model = MrMCMinH()
        assert model.method == "hierarchical"
        assert model.estimator == "positional"

    def test_greedy_default_estimator_is_paper_literal(self):
        assert MrMCMinH(method="greedy").estimator == "set"

    def test_validation(self):
        with pytest.raises(ClusteringError):
            MrMCMinH(method="kmeans")
        with pytest.raises(ClusteringError):
            MrMCMinH(linkage="ward")
        with pytest.raises(ClusteringError):
            MrMCMinH(threshold=2.0)
        with pytest.raises(ClusteringError):
            MrMCMinH(num_map_tasks=0)


class TestMrMCMinHFit:
    def test_hierarchical_separates_families(self, two_family_records):
        model = MrMCMinH(kmer_size=5, num_hashes=48, threshold=0.5, seed=1)
        run = model.fit(two_family_records)
        labels = {r.read_id: r.label for r in two_family_records}
        for members in run.assignment.clusters().values():
            assert len({labels[m] for m in members}) == 1

    def test_greedy_runs(self, two_family_records):
        model = MrMCMinH(method="greedy", kmer_size=5, num_hashes=48, threshold=0.5)
        run = model.fit(two_family_records)
        assert run.similarity is None
        assert run.assignment.num_sequences == len(two_family_records)

    def test_hierarchical_outputs(self, two_family_records):
        run = MrMCMinH(kmer_size=5, num_hashes=48, threshold=0.5).fit(two_family_records)
        n = len(two_family_records)
        assert run.similarity.shape == (n, n)
        assert [t.job_name for t in run.traces] == ["sketch", "similarity", "cluster"]
        assert set(run.timings) == {"sketch", "similarity", "cluster"}
        assert run.wall_seconds > 0
        assert run.counters.get("pipeline", "sequences_clustered") == n

    def test_deterministic(self, two_family_records):
        a = MrMCMinH(kmer_size=5, num_hashes=48, threshold=0.5, seed=3).fit(
            two_family_records
        )
        b = MrMCMinH(kmer_size=5, num_hashes=48, threshold=0.5, seed=3).fit(
            two_family_records
        )
        assert dict(a.assignment) == dict(b.assignment)

    def test_short_reads_dropped(self):
        records = [
            SequenceRecord("long1", "ACGTACGTACGTACGT"),
            SequenceRecord("tiny", "ACG"),
            SequenceRecord("long2", "ACGTACGTACGTACGT"),
        ]
        run = MrMCMinH(kmer_size=5, num_hashes=16, threshold=0.5).fit(records)
        assert set(run.assignment) == {"long1", "long2"}

    def test_all_too_short_rejected(self):
        with pytest.raises(ClusteringError, match="sketch"):
            MrMCMinH(kmer_size=10, num_hashes=16).fit([SequenceRecord("r", "ACGT")])

    def test_empty_rejected(self):
        with pytest.raises(ClusteringError):
            MrMCMinH().fit([])

    def test_multiprocess_runner_matches_serial(self, two_family_records):
        serial = MrMCMinH(kmer_size=5, num_hashes=48, threshold=0.5, seed=0).fit(
            two_family_records
        )
        parallel = MrMCMinH(
            kmer_size=5, num_hashes=48, threshold=0.5, seed=0,
            runner=MultiprocessRunner(num_workers=2),
        ).fit(two_family_records)
        assert dict(serial.assignment) == dict(parallel.assignment)


class TestHdfsRoundTrip:
    def test_fit_hdfs(self, two_family_records):
        hdfs = SimulatedHDFS(3, block_size=512)
        MrMCMinH.stage_records(hdfs, "/in.fa", two_family_records)
        model = MrMCMinH(kmer_size=5, num_hashes=48, threshold=0.5)
        run = model.fit_hdfs(hdfs, "/in.fa", "/out.tsv")
        text = hdfs.get_text("/out.tsv")
        lines = text.strip().splitlines()
        assert len(lines) == len(two_family_records)
        for line in lines:
            read_id, label = line.split("\t")
            assert run.assignment[read_id] == int(label)
