"""Tests for the simulated HDFS."""

import pytest

from repro.errors import HdfsError
from repro.mapreduce.hdfs import SimulatedHDFS


@pytest.fixture
def hdfs():
    return SimulatedHDFS(num_datanodes=4, block_size=16, replication=2, seed=0)


class TestNamespace:
    def test_put_get_roundtrip(self, hdfs):
        hdfs.put("/a/b.txt", "hello world, this is longer than a block")
        assert hdfs.get_text("/a/b.txt") == "hello world, this is longer than a block"

    def test_exists_and_ls(self, hdfs):
        hdfs.put("/x/1", "a")
        hdfs.put("/x/2", "b")
        hdfs.put("/y/3", "c")
        assert hdfs.exists("/x/1")
        assert not hdfs.exists("/x/9")
        assert hdfs.ls("/x") == ["/x/1", "/x/2"]
        assert len(hdfs.ls()) == 3

    def test_rm(self, hdfs):
        hdfs.put("/f", "data")
        hdfs.rm("/f")
        assert not hdfs.exists("/f")
        assert hdfs.datanode_usage() == [0, 0, 0, 0]

    def test_overwrite_requires_flag(self, hdfs):
        hdfs.put("/f", "one")
        with pytest.raises(HdfsError, match="already exists"):
            hdfs.put("/f", "two")
        hdfs.put("/f", "two", overwrite=True)
        assert hdfs.get_text("/f") == "two"

    def test_relative_path_rejected(self, hdfs):
        with pytest.raises(HdfsError, match="absolute"):
            hdfs.put("no-slash", "x")

    def test_missing_file(self, hdfs):
        with pytest.raises(HdfsError, match="does not exist"):
            hdfs.get("/missing")


class TestBlocks:
    def test_block_count(self, hdfs):
        meta = hdfs.put("/f", "x" * 50)  # 50 bytes / 16-byte blocks = 4 blocks
        assert meta.num_blocks == 4
        assert meta.size == 50
        assert sum(b.size for b in meta.blocks) == 50

    def test_replication(self, hdfs):
        meta = hdfs.put("/f", "x" * 40)
        for block in meta.blocks:
            assert len(block.replicas) == 2
            assert len(set(block.replicas)) == 2

    def test_replication_capped_by_nodes(self):
        hdfs = SimulatedHDFS(num_datanodes=2, replication=5)
        assert hdfs.replication == 2

    def test_read_block(self, hdfs):
        hdfs.put("/f", "0123456789abcdef" + "ghij")
        assert hdfs.read_block("/f", 0) == b"0123456789abcdef"
        assert hdfs.read_block("/f", 1) == b"ghij"
        with pytest.raises(HdfsError, match="out of range"):
            hdfs.read_block("/f", 2)

    def test_empty_file(self, hdfs):
        meta = hdfs.put("/empty", "")
        assert meta.size == 0
        assert hdfs.get_text("/empty") == ""

    def test_bytes_payload(self, hdfs):
        hdfs.put("/bin", bytes(range(40)))
        assert hdfs.get("/bin") == bytes(range(40))


class TestLocality:
    def test_locality_map_covers_blocks(self, hdfs):
        meta = hdfs.put("/f", "x" * 64)
        locality = hdfs.locality_map("/f")
        placed = sorted(i for blocks in locality.values() for i in blocks)
        # Each block appears once per replica.
        assert placed == sorted(
            list(range(meta.num_blocks)) * hdfs.replication
        )

    def test_usage_accounts_replication(self, hdfs):
        hdfs.put("/f", "x" * 32)
        assert sum(hdfs.datanode_usage()) == 32 * 2

    def test_construction_validation(self):
        with pytest.raises(HdfsError):
            SimulatedHDFS(num_datanodes=0)
        with pytest.raises(HdfsError):
            SimulatedHDFS(block_size=0)
        with pytest.raises(HdfsError):
            SimulatedHDFS(replication=0)

    def test_deterministic_placement(self):
        a = SimulatedHDFS(4, block_size=8, replication=2, seed=5)
        b = SimulatedHDFS(4, block_size=8, replication=2, seed=5)
        ma = a.put("/f", "x" * 40)
        mb = b.put("/f", "x" * 40)
        assert [blk.replicas for blk in ma.blocks] == [blk.replicas for blk in mb.blocks]


class TestChecksums:
    """Per-block CRC32: quarantine on mismatch, failover, fsck."""

    def test_corrupt_replica_fails_over_to_good_copy(self, hdfs):
        payload = "block checksums catch silent bit rot" * 2
        meta = hdfs.put("/crc.txt", payload)
        victim = meta.blocks[0].replicas[0]
        held = sorted(
            b.block_id for b in meta.blocks if victim in b.replicas
        )
        block_id = hdfs.corrupt_replica(victim, 0)
        assert block_id == held[0]
        # Read still succeeds, byte-identical, via the surviving replica.
        assert hdfs.get_text("/crc.txt") == payload
        stats = hdfs.integrity_stats()
        assert stats["replicas_quarantined"] == 1
        assert stats["crc_failovers"] == 1

    def test_all_replicas_corrupt_raises(self):
        fs = SimulatedHDFS(num_datanodes=2, block_size=64, replication=2, seed=0)
        meta = fs.put("/doomed.txt", "x" * 32)
        for node in meta.blocks[0].replicas:
            fs.corrupt_replica(node, 0)
        with pytest.raises(HdfsError, match="corrupt or missing"):
            fs.get("/doomed.txt")

    def test_corrupt_replica_out_of_range_returns_none(self, hdfs):
        hdfs.put("/one.txt", "tiny")
        assert hdfs.corrupt_replica(0, block_index=99) is None

    def test_quarantined_replica_not_rereplicated(self, hdfs):
        """rereplicate copies from a *verified* replica and restores the
        replication factor after a quarantine."""
        payload = "do not clone rotten bytes" * 3
        meta = hdfs.put("/heal.txt", payload)
        victim = meta.blocks[0].replicas[0]
        hdfs.corrupt_replica(victim, 0)
        assert hdfs.get_text("/heal.txt") == payload  # quarantines the copy
        created = hdfs.rereplicate()
        assert created >= 1
        assert hdfs.fsck()["healthy"]
        assert hdfs.get_text("/heal.txt") == payload

    def test_fsck_reports_corruption_and_heals_counts(self, hdfs):
        payload = "fsck scans every replica" * 4
        meta = hdfs.put("/scan.txt", payload)
        victim = meta.blocks[0].replicas[0]
        hdfs.corrupt_replica(victim, 0)
        report = hdfs.fsck()
        assert not report["healthy"]
        assert report["replicas_quarantined"] == 1
        assert report["under_replicated_blocks"] == 1
        assert report["files"]["/scan.txt"]["under_replicated"]
        hdfs.rereplicate()
        assert hdfs.fsck()["healthy"]

    def test_fsck_clean_cluster(self, hdfs):
        hdfs.put("/ok.txt", "all good here" * 4)
        report = hdfs.fsck()
        assert report["healthy"]
        assert report["missing_blocks"] == 0
        assert report["under_replicated_blocks"] == 0
        assert report["total_blocks"] == hdfs.stat("/ok.txt").num_blocks
        assert report["live_datanodes"] == [0, 1, 2, 3]


class TestDegradedDatanodes:
    def test_reads_route_around_degraded_node(self, hdfs):
        payload = "degraded nodes serve only as a last resort" * 2
        meta = hdfs.put("/deg.txt", payload)
        node = meta.blocks[0].replicas[0]
        hdfs.degrade_datanode(node)
        assert hdfs.get_text("/deg.txt") == payload
        # Every block had a healthy replica, so no degraded reads yet.
        assert hdfs.fsck()["degraded_datanodes"] == [node]

    def test_degraded_node_still_readable_when_last_copy(self):
        fs = SimulatedHDFS(num_datanodes=2, block_size=64, replication=2, seed=0)
        fs.put("/last.txt", "y" * 32)
        fs.degrade_datanode(0)
        fs.degrade_datanode(1)
        assert fs.get_text("/last.txt") == "y" * 32
        assert fs.integrity_stats()["degraded_reads"] >= 1

    def test_restore_clears_degradation(self, hdfs):
        hdfs.degrade_datanode(1)
        assert hdfs.fsck()["degraded_datanodes"] == [1]
        hdfs.restore_datanode(1)
        assert hdfs.fsck()["degraded_datanodes"] == []


class TestRereplicateEdgeCases:
    def test_all_replicas_lost_raises(self):
        fs = SimulatedHDFS(num_datanodes=3, block_size=64, replication=2, seed=0)
        meta = fs.put("/lost.txt", "z" * 32)
        for node in meta.blocks[0].replicas:
            fs.fail_datanode(node)
        with pytest.raises(HdfsError, match="lost all replicas"):
            fs.rereplicate()

    def test_replication_clamped_when_live_below_factor(self):
        fs = SimulatedHDFS(num_datanodes=4, block_size=64, replication=3, seed=0)
        fs.put("/clamp.txt", "w" * 32)
        fs.fail_datanode(0)
        fs.fail_datanode(1)
        fs.rereplicate()  # only 2 live nodes: want clamps to 2, no raise
        for block in fs.stat("/clamp.txt").blocks:
            live_replicas = [n for n in block.replicas if fs.datanode_alive(n)]
            assert len(live_replicas) == 2
        assert fs.fsck()["healthy"]  # want is clamped in fsck too

    def test_restart_then_rereplicate_converges(self):
        fs = SimulatedHDFS(num_datanodes=3, block_size=64, replication=2, seed=0)
        payload = "v" * 100
        fs.put("/conv.txt", payload)
        fs.fail_datanode(0)
        fs.rereplicate()
        assert fs.get_text("/conv.txt") == payload
        fs.restart_datanode(0)  # rejoins with its (stale-but-valid) store
        created = fs.rereplicate()
        assert created == 0  # already at factor: convergence, not churn
        assert fs.fsck()["healthy"]
        assert fs.get_text("/conv.txt") == payload

    def test_rereplicate_noop_on_healthy_cluster(self, hdfs):
        hdfs.put("/noop.txt", "steady state" * 4)
        assert hdfs.rereplicate() == 0


class TestBitRotFaultPlan:
    def test_block_bitrot_barrier_exercises_crc_path(self):
        from repro.mapreduce.faults import BlockBitRot, FaultPlan

        fs = SimulatedHDFS(num_datanodes=4, block_size=64, replication=2, seed=0)
        payload = "bit rot strikes between job phases" * 4
        fs.put("/rot.txt", payload)
        plan = FaultPlan(block_bitrot=[BlockBitRot("map_end", 1)]).bind_hdfs(fs)
        from repro.mapreduce.counters import Counters

        counters = Counters()
        plan.trigger_barrier("map_end", counters)
        assert counters.get("fault", "blocks_bitrotted") == 1
        assert fs.get_text("/rot.txt") == payload  # CRC failover saved it
        assert fs.integrity_stats()["replicas_quarantined"] >= 0
        # Barrier fires once even if triggered again.
        plan.trigger_barrier("map_end", counters)
        assert counters.get("fault", "blocks_bitrotted") == 1

    def test_datanode_degrade_barrier(self):
        from repro.mapreduce.faults import DatanodeDegrade, FaultPlan

        fs = SimulatedHDFS(num_datanodes=4, block_size=64, replication=2, seed=0)
        fs.put("/d.txt", "route around me" * 4)
        plan = FaultPlan(datanode_degrades=[DatanodeDegrade("job_start", 2)]).bind_hdfs(fs)
        from repro.mapreduce.counters import Counters

        counters = Counters()
        plan.trigger_barrier("job_start", counters)
        assert counters.get("fault", "datanodes_degraded") == 1
        assert fs.fsck()["degraded_datanodes"] == [2]
        assert fs.datanode_alive(2)  # degraded, not dead
