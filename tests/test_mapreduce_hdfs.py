"""Tests for the simulated HDFS."""

import pytest

from repro.errors import HdfsError
from repro.mapreduce.hdfs import SimulatedHDFS


@pytest.fixture
def hdfs():
    return SimulatedHDFS(num_datanodes=4, block_size=16, replication=2, seed=0)


class TestNamespace:
    def test_put_get_roundtrip(self, hdfs):
        hdfs.put("/a/b.txt", "hello world, this is longer than a block")
        assert hdfs.get_text("/a/b.txt") == "hello world, this is longer than a block"

    def test_exists_and_ls(self, hdfs):
        hdfs.put("/x/1", "a")
        hdfs.put("/x/2", "b")
        hdfs.put("/y/3", "c")
        assert hdfs.exists("/x/1")
        assert not hdfs.exists("/x/9")
        assert hdfs.ls("/x") == ["/x/1", "/x/2"]
        assert len(hdfs.ls()) == 3

    def test_rm(self, hdfs):
        hdfs.put("/f", "data")
        hdfs.rm("/f")
        assert not hdfs.exists("/f")
        assert hdfs.datanode_usage() == [0, 0, 0, 0]

    def test_overwrite_requires_flag(self, hdfs):
        hdfs.put("/f", "one")
        with pytest.raises(HdfsError, match="already exists"):
            hdfs.put("/f", "two")
        hdfs.put("/f", "two", overwrite=True)
        assert hdfs.get_text("/f") == "two"

    def test_relative_path_rejected(self, hdfs):
        with pytest.raises(HdfsError, match="absolute"):
            hdfs.put("no-slash", "x")

    def test_missing_file(self, hdfs):
        with pytest.raises(HdfsError, match="does not exist"):
            hdfs.get("/missing")


class TestBlocks:
    def test_block_count(self, hdfs):
        meta = hdfs.put("/f", "x" * 50)  # 50 bytes / 16-byte blocks = 4 blocks
        assert meta.num_blocks == 4
        assert meta.size == 50
        assert sum(b.size for b in meta.blocks) == 50

    def test_replication(self, hdfs):
        meta = hdfs.put("/f", "x" * 40)
        for block in meta.blocks:
            assert len(block.replicas) == 2
            assert len(set(block.replicas)) == 2

    def test_replication_capped_by_nodes(self):
        hdfs = SimulatedHDFS(num_datanodes=2, replication=5)
        assert hdfs.replication == 2

    def test_read_block(self, hdfs):
        hdfs.put("/f", "0123456789abcdef" + "ghij")
        assert hdfs.read_block("/f", 0) == b"0123456789abcdef"
        assert hdfs.read_block("/f", 1) == b"ghij"
        with pytest.raises(HdfsError, match="out of range"):
            hdfs.read_block("/f", 2)

    def test_empty_file(self, hdfs):
        meta = hdfs.put("/empty", "")
        assert meta.size == 0
        assert hdfs.get_text("/empty") == ""

    def test_bytes_payload(self, hdfs):
        hdfs.put("/bin", bytes(range(40)))
        assert hdfs.get("/bin") == bytes(range(40))


class TestLocality:
    def test_locality_map_covers_blocks(self, hdfs):
        meta = hdfs.put("/f", "x" * 64)
        locality = hdfs.locality_map("/f")
        placed = sorted(i for blocks in locality.values() for i in blocks)
        # Each block appears once per replica.
        assert placed == sorted(
            list(range(meta.num_blocks)) * hdfs.replication
        )

    def test_usage_accounts_replication(self, hdfs):
        hdfs.put("/f", "x" * 32)
        assert sum(hdfs.datanode_usage()) == 32 * 2

    def test_construction_validation(self):
        with pytest.raises(HdfsError):
            SimulatedHDFS(num_datanodes=0)
        with pytest.raises(HdfsError):
            SimulatedHDFS(block_size=0)
        with pytest.raises(HdfsError):
            SimulatedHDFS(replication=0)

    def test_deterministic_placement(self):
        a = SimulatedHDFS(4, block_size=8, replication=2, seed=5)
        b = SimulatedHDFS(4, block_size=8, replication=2, seed=5)
        ma = a.put("/f", "x" * 40)
        mb = b.put("/f", "x" * 40)
        assert [blk.replicas for blk in ma.blocks] == [blk.replicas for blk in mb.blocks]
