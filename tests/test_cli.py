"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.datasets import generate_whole_metagenome_sample
from repro.seq.fasta import write_fasta


@pytest.fixture
def fasta_path(tmp_path):
    reads = generate_whole_metagenome_sample("S1", num_reads=25, genome_length=3000)
    path = tmp_path / "sample.fa"
    write_fasta(reads, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster", "x.fa"])
        assert args.kmer == 5
        assert args.method == "hierarchical"

    def test_bench_target_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "table99"])


class TestClusterCommand:
    def test_writes_tsv(self, fasta_path, tmp_path, capsys):
        out = tmp_path / "labels.tsv"
        code = main(
            [
                "cluster", fasta_path,
                "--kmer", "5", "--hashes", "32", "--threshold", "0.78",
                "--output", str(out),
            ]
        )
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 25
        for line in lines:
            rid, label = line.split("\t")
            assert label.isdigit()

    def test_stdout_mode(self, fasta_path, capsys):
        code = main(["cluster", fasta_path, "--hashes", "32"])
        assert code == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 25

    def test_greedy_method(self, fasta_path, capsys):
        code = main(["cluster", fasta_path, "--method", "greedy", "--hashes", "32"])
        assert code == 0


class TestDiversityCommand:
    def test_report(self, fasta_path, capsys):
        code = main(["diversity", fasta_path, "--hashes", "32", "--threshold", "0.78"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Chao1 richness" in out
        assert "Shannon index" in out
        assert "rarefaction" in out


class TestPigCommand:
    def test_runs_script(self, fasta_path, capsys):
        code = main(["pig", fasta_path, "--hashes", "32", "--threshold", "0.78"])
        assert code == 0
        out = capsys.readouterr().out
        assert "/out/hier" in out
        assert "/out/greedy" in out


class TestSimulateCommand:
    def test_table_printed(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes-list", "2", "8",
                "--reads-list", "1000", "100000",
                "--calibration-reads", "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "8 nodes" in out


class TestBenchCommand:
    def test_table3(self, capsys):
        code = main(["bench", "table3", "--reads", "40", "--samples", "S1"])
        assert code == 0
        assert "Table III" in capsys.readouterr().out

    def test_figure2(self, capsys):
        code = main(["bench", "figure2", "--reads", "40"])
        assert code == 0
        assert "Figure 2" in capsys.readouterr().out
