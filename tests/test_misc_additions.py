"""Tests for Pig JOIN, sequence statistics, results serialization, the
shared-region environmental pool, and the public API surface."""

import pytest

from repro.errors import EvaluationError, PigParseError, SequenceError
from repro.bench.harness import MethodResult
from repro.bench.report_io import (
    load_results,
    results_from_json,
    results_to_json,
    results_to_markdown,
    save_results,
)
from repro.datasets import generate_environmental_sample
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.pig import PigEngine, parse_script
from repro.seq.records import SequenceRecord
from repro.seq.stats import length_histogram, n50, sequence_set_stats


class TestPigJoin:
    FASTA_A = ">r1\nACGT\n>r2\nTTTT\n"
    LABELS = "/labels"

    def _engine(self):
        hdfs = SimulatedHDFS(2, block_size=4096)
        hdfs.put("/a.fa", self.FASTA_A)
        hdfs.put("/b.fa", ">r1\nACGTACGT\n>r3\nGGGG\n")
        return PigEngine(hdfs)

    def test_parse(self):
        stmt = parse_script("J = JOIN A BY id, B BY key;")[0]
        assert stmt.kind == "join"
        assert (stmt.source, stmt.join_left) == ("A", "id")
        assert (stmt.join_source, stmt.join_right) == ("B", "key")

    def test_equijoin(self):
        engine = self._engine()
        res = engine.run(
            "A = LOAD '/a.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "B = LOAD '/b.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "J = JOIN A BY readid, B BY readid;"
        )
        rel = res.relations["J"]
        # Only r1 appears on both sides.
        assert len(rel) == 1
        assert rel.rows[0][0] == "r1"
        assert rel.fields[0] == "A::readid"
        assert rel.fields[4] == "B::readid"

    def test_join_cross_product_on_duplicate_keys(self):
        hdfs = SimulatedHDFS(2, block_size=4096)
        hdfs.put("/a.fa", ">k\nAAAA\n>k2\nCCCC\n")
        hdfs.put("/b.fa", ">k\nGGGG\n>k3\nTTTT\n")
        engine = PigEngine(hdfs)
        res = engine.run(
            "A = LOAD '/a.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "B = LOAD '/b.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "J = JOIN A BY d, B BY d;"  # all lengths 4 -> 2x2 product
        )
        assert len(res.relations["J"]) == 4

    def test_join_records_trace(self):
        engine = self._engine()
        res = engine.run(
            "A = LOAD '/a.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "B = LOAD '/b.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "J = JOIN A BY readid, B BY readid;"
        )
        assert any(t.job_name == "pig-join-J" for t in res.traces)


class TestSequenceStats:
    def test_n50_known(self):
        # total 100; sorted desc 40,30,20,10 -> cumulative 40,70 >= 50.
        assert n50([10, 20, 30, 40]) == 30

    def test_n50_single(self):
        assert n50([7]) == 7

    def test_n50_empty(self):
        with pytest.raises(SequenceError):
            n50([])

    def test_stats(self):
        records = [
            SequenceRecord("a", "ACGT"),          # GC 0.5
            SequenceRecord("b", "GGGGCCCC"),      # GC 1.0
        ]
        stats = sequence_set_stats(records)
        assert stats.count == 2
        assert stats.total_bases == 12
        assert stats.min_length == 4
        assert stats.max_length == 8
        assert stats.n50 == 8
        assert 0.7 < stats.gc_mean < 0.8
        assert "2 sequences" in stats.describe()

    def test_histogram(self):
        records = [SequenceRecord(f"r{i}", "A" * (10 + i)) for i in range(20)]
        bins = length_histogram(records, num_bins=5)
        assert sum(c for _s, _e, c in bins) == 20
        with pytest.raises(SequenceError):
            length_histogram(records, num_bins=0)
        with pytest.raises(SequenceError):
            length_histogram([])


class TestReportIo:
    RESULTS = [
        MethodResult("m1", "S1", 5, 90.0, 55.5, 1.25, 60.0, 8),
        MethodResult("m2", "S1", 7, None, None, 0.5, None, 7),
    ]

    def test_json_roundtrip(self):
        back = results_from_json(results_to_json(self.RESULTS))
        assert back == self.RESULTS

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "res.json"
        save_results(self.RESULTS, path)
        assert load_results(path) == self.RESULTS

    def test_invalid_json(self):
        with pytest.raises(EvaluationError):
            results_from_json("not json")
        with pytest.raises(EvaluationError):
            results_from_json('{"not": "a list"}')
        with pytest.raises(EvaluationError):
            results_from_json('[{"bogus": 1}]')

    def test_markdown(self):
        md = results_to_markdown(self.RESULTS)
        lines = md.splitlines()
        assert lines[0].startswith("| Sample")
        assert "| S1 | m1 | 5 | 90.00 | 55.50 | 1.25 | 60.00 |" in md
        assert "| S1 | m2 | 7 | - | - | 0.50 | - |" in md
        with pytest.raises(EvaluationError):
            results_to_markdown([])


class TestRegionalPools:
    def test_shared_region_shares_otus(self):
        a = generate_environmental_sample("53R", num_reads=150, seed=0, region="lab")
        b = generate_environmental_sample("137", num_reads=150, seed=0, region="lab")
        otus_a = {r.label for r in a}
        otus_b = {r.label for r in b}
        assert otus_a & otus_b  # overlapping organisms

    def test_distinct_regions_disjoint(self):
        a = generate_environmental_sample("53R", num_reads=100, seed=0, region="lab")
        c = generate_environmental_sample("FS312", num_reads=100, seed=0, region="vent")
        assert not ({r.label for r in a} & {r.label for r in c})

    def test_default_pools_per_sample(self):
        a = generate_environmental_sample("53R", num_reads=80, seed=0)
        b = generate_environmental_sample("137", num_reads=80, seed=0)
        assert not ({r.label for r in a} & {r.label for r in b})


class TestPublicApi:
    def test_all_exports_resolve(self):
        import repro
        import repro.align
        import repro.baselines
        import repro.cluster
        import repro.datasets
        import repro.eval
        import repro.mapreduce
        import repro.minhash
        import repro.pig
        import repro.seq

        for module in (
            repro, repro.align, repro.baselines, repro.cluster, repro.datasets,
            repro.eval, repro.mapreduce, repro.minhash, repro.pig, repro.seq,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
