"""Tests for the shotgun read simulator and the 16S gene model."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.datasets.genomes import random_genome
from repro.datasets.reads import sample_community, shotgun_reads
from repro.datasets.sixteen_s import SixteenSModel, amplicon_reads
from repro.seq.error_models import SubstitutionErrorModel


class TestShotgunReads:
    def test_count_length_labels(self):
        g = random_genome(2000, rng=0)
        reads = shotgun_reads(g, 50, 100, label="X", rng=1)
        assert len(reads) == 50
        assert all(len(r) == 100 for r in reads)
        assert all(r.label == "X" for r in reads)
        assert len({r.read_id for r in reads}) == 50

    def test_circular_wraparound(self):
        g = "A" * 50 + "C" * 50
        reads = shotgun_reads(g, 200, 60, label="X", circular=True, rng=0)
        # Some read must span the origin (contain the C->A junction).
        assert any("CA" in r.sequence for r in reads)

    def test_linear_reads_are_substrings(self):
        g = random_genome(500, rng=2)
        reads = shotgun_reads(g, 30, 80, label="X", circular=False, rng=3)
        assert all(r.sequence in g for r in reads)

    def test_errors_applied(self):
        g = random_genome(1000, rng=0)
        clean = shotgun_reads(g, 20, 100, label="X", circular=False, rng=5)
        noisy = shotgun_reads(
            g, 20, 100, label="X", circular=False, rng=5,
            error_model=SubstitutionErrorModel(0.2),
        )
        assert any(n.sequence not in g for n in noisy)
        assert all(c.sequence in g for c in clean)

    def test_validation(self):
        g = random_genome(100, rng=0)
        with pytest.raises(DatasetError):
            shotgun_reads(g, -1, 50, label="X")
        with pytest.raises(DatasetError):
            shotgun_reads(g, 5, 0, label="X")
        with pytest.raises(DatasetError):
            shotgun_reads(g, 5, 200, label="X")  # read longer than genome


class TestSampleCommunity:
    def test_total_and_ratios(self):
        genomes = [("a", random_genome(2000, rng=0)), ("b", random_genome(2000, rng=1))]
        reads = sample_community(genomes, [1, 3], 400, 100, rng=2)
        assert len(reads) == 400
        counts = {"a": 0, "b": 0}
        for r in reads:
            counts[r.label] += 1
        assert counts["b"] > counts["a"] * 2

    def test_every_genome_represented(self):
        genomes = [(f"g{i}", random_genome(1000, rng=i)) for i in range(3)]
        reads = sample_community(genomes, [1, 1, 98], 100, 100, rng=0)
        assert {r.label for r in reads} == {"g0", "g1", "g2"}

    def test_shuffled(self):
        genomes = [("a", random_genome(1000, rng=0)), ("b", random_genome(1000, rng=1))]
        reads = sample_community(genomes, [1, 1], 100, 50, rng=2)
        labels = [r.label for r in reads]
        # Not all of genome a's reads first.
        assert labels[:50] != ["a"] * 50

    def test_validation(self):
        g = [("a", random_genome(1000, rng=0))]
        with pytest.raises(DatasetError):
            sample_community(g, [1, 2], 10, 50)
        with pytest.raises(DatasetError):
            sample_community([], [], 10, 50)
        with pytest.raises(DatasetError):
            sample_community(g, [0], 10, 50)
        with pytest.raises(DatasetError):
            sample_community(g * 3, [1, 1, 1], 2, 50)


class TestSixteenSModel:
    def test_gene_length(self):
        model = SixteenSModel(seed=0)
        gene = model.gene_for_taxon("X")
        # Indel-free expectation: conserved + variable regions.
        assert abs(len(gene) - model.gene_length) < model.gene_length * 0.1

    def test_conserved_regions_shared(self):
        model = SixteenSModel(seed=0)
        g1 = model.gene_for_taxon("A")
        g2 = model.gene_for_taxon("B")
        # First conserved block is identical across taxa.
        assert g1[: model.conserved_length] == g2[: model.conserved_length]

    def test_variable_regions_differ(self):
        model = SixteenSModel(seed=0, divergence=0.3)
        g1 = model.gene_for_taxon("A")
        g2 = model.gene_for_taxon("B")
        assert g1 != g2

    def test_deterministic_per_taxon(self):
        model = SixteenSModel(seed=0)
        assert model.gene_for_taxon("A") == model.gene_for_taxon("A")

    def test_variable_window(self):
        model = SixteenSModel(seed=0)
        gene = model.gene_for_taxon("A")
        window = model.variable_window(gene, region=3, flank=20)
        assert len(window) == model.variable_length + 40
        with pytest.raises(DatasetError):
            model.variable_window(gene, region=99)

    def test_validation(self):
        with pytest.raises(DatasetError):
            SixteenSModel(num_regions=0)
        with pytest.raises(DatasetError):
            SixteenSModel(divergence=1.5)
        with pytest.raises(DatasetError):
            SixteenSModel(seed=0).gene_for_taxon("")


class TestAmpliconReads:
    def test_basic(self):
        model = SixteenSModel(seed=0)
        window = model.variable_window(model.gene_for_taxon("A"))
        reads = amplicon_reads(window, 50, label="A", mean_length=60, rng=1)
        assert len(reads) == 50
        lengths = [len(r) for r in reads]
        assert 45 < np.mean(lengths) < 75  # unequal lengths around the mean

    def test_lengths_vary(self):
        model = SixteenSModel(seed=0)
        window = model.variable_window(model.gene_for_taxon("A"))
        reads = amplicon_reads(window, 50, label="A", mean_length=60, rng=1)
        assert len({len(r) for r in reads}) > 1

    def test_validation(self):
        with pytest.raises(DatasetError):
            amplicon_reads("ACGTACGTACGT", -1, label="x")
        with pytest.raises(DatasetError):
            amplicon_reads("ACGT", 5, label="x")
        with pytest.raises(DatasetError):
            amplicon_reads("ACGTACGTACGT", 5, label="x", mean_length=5)
