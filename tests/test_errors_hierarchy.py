"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_domain_parentage(self):
        assert issubclass(errors.FastaParseError, errors.SequenceError)
        assert issubclass(errors.KmerError, errors.SequenceError)
        assert issubclass(errors.HdfsError, errors.MapReduceError)
        assert issubclass(errors.SimulationError, errors.MapReduceError)
        assert issubclass(errors.PigParseError, errors.PigError)

    def test_service_error_parentage(self):
        for exc_type in (
            errors.ServiceOverloadedError,
            errors.CircuitOpenError,
            errors.ServiceStoppedError,
            errors.DeadlineExceededError,
            errors.JobCancelledError,
        ):
            assert issubclass(exc_type, errors.ServiceError)
        assert issubclass(errors.ServiceError, errors.ReproError)
        # Service errors are a peer domain, not engine errors: catching
        # MapReduceError must not swallow an admission rejection.
        assert not issubclass(errors.ServiceError, errors.MapReduceError)

    def test_retry_after_hint_formatting(self):
        exc = errors.ServiceOverloadedError("queue full", retry_after=1.5)
        assert exc.retry_after == 1.5
        assert "1.50s" in str(exc)
        open_exc = errors.CircuitOpenError("tripped", retry_after=0.25)
        assert open_exc.retry_after == 0.25
        assert "0.25s" in str(open_exc)

    def test_line_number_formatting(self):
        exc = errors.FastaParseError("bad record", line_number=7)
        assert "line 7" in str(exc)
        assert exc.line_number == 7
        plain = errors.FastaParseError("bad record")
        assert plain.line_number is None
        assert "line" not in str(plain)

    def test_pig_parse_error_line(self):
        exc = errors.PigParseError("oops", line_number=3)
        assert "line 3" in str(exc)

    def test_single_except_catches_library_errors(self):
        """The documented catch-all behaviour."""
        from repro.seq.alphabet import encode_dna
        from repro.minhash.universal import UniversalHashFamily

        for trigger in (
            lambda: encode_dna("XYZ"),
            lambda: UniversalHashFamily(0, 10),
        ):
            with pytest.raises(errors.ReproError):
                trigger()


class TestClusteringErrorTaxonomy:
    def test_parentage_chain(self):
        assert issubclass(errors.ClusterConfigError, errors.ClusteringError)
        assert issubclass(
            errors.SparseCompatibilityError, errors.ClusterConfigError
        )
        assert issubclass(
            errors.WireCompatibilityError, errors.ClusterConfigError
        )
        # Still inside the one-except contract.
        assert issubclass(errors.SparseCompatibilityError, errors.ReproError)

    def test_sparse_compatibility_error_carries_configuration(self):
        exc = errors.SparseCompatibilityError(
            "nope", method="hierarchical", linkage="average", estimator="set"
        )
        assert exc.method == "hierarchical"
        assert exc.linkage == "average"
        assert exc.estimator == "set"
        assert str(exc) == "nope"
        bare = errors.SparseCompatibilityError("bare")
        assert bare.method is bare.linkage is bare.estimator is None

    def test_pipeline_raises_typed_config_errors(self):
        from repro.cluster.pipeline import MrMCMinH

        with pytest.raises(errors.ClusterConfigError, match="method"):
            MrMCMinH(method="kmeans")
        with pytest.raises(errors.ClusterConfigError, match="linkage"):
            MrMCMinH(linkage="centroid")
        with pytest.raises(errors.ClusterConfigError, match="threshold"):
            MrMCMinH(threshold=1.5)

    def test_pipeline_raises_sparse_compatibility_with_attrs(self):
        from repro.cluster.pipeline import MrMCMinH

        with pytest.raises(errors.SparseCompatibilityError) as info:
            MrMCMinH(sparse=True, method="hierarchical", linkage="average")
        assert info.value.linkage == "average"
        assert "single" in str(info.value)

        with pytest.raises(errors.SparseCompatibilityError) as info:
            MrMCMinH(sparse="engine", method="greedy", estimator="set")
        assert info.value.estimator == "set"

        with pytest.raises(errors.SparseCompatibilityError) as info:
            MrMCMinH(sparse="engine", threshold=0.0)
        assert "threshold > 0" in str(info.value)

    def test_pipeline_raises_wire_compatibility(self):
        from repro.cluster.pipeline import MrMCMinH

        with pytest.raises(errors.WireCompatibilityError, match="positional"):
            MrMCMinH(method="greedy", estimator="set", wire_bits=4)

    def test_catching_clustering_error_covers_the_sparse_family(self):
        from repro.cluster.sparse_jobs import run_sparse_jobs

        with pytest.raises(errors.ClusteringError):
            run_sparse_jobs([])
        with pytest.raises(errors.ClusteringError):
            run_sparse_jobs([], band_size=0)


class TestSchedulerPipelineIntegration:
    def test_table3_workload_fifo_vs_fair(self):
        """Schedule several real pipeline runs as a shared-cluster
        workload: fair sharing must not change the makespan but must cut
        the short job's latency when queued behind long ones."""
        from repro.cluster.pipeline import MrMCMinH
        from repro.datasets import generate_whole_metagenome_sample
        from repro.mapreduce.scheduler import (
            job_from_trace,
            mean_latency,
            simulate_schedule,
        )
        from repro.mapreduce.types import JobTrace

        def pipeline_as_job(sid, num_reads, arrival):
            reads = generate_whole_metagenome_sample(
                sid, num_reads=num_reads, genome_length=4000, seed=0
            )
            run = MrMCMinH(kmer_size=5, num_hashes=48, threshold=0.78, seed=0).fit(reads)
            merged = JobTrace(job_name=sid)
            for t in run.traces:
                merged.map_tasks.extend(t.map_tasks)
                merged.reduce_tasks.extend(t.reduce_tasks)
            return job_from_trace(merged, arrival=arrival)

        jobs = [
            pipeline_as_job("S1", 120, arrival=0.0),
            pipeline_as_job("S13", 30, arrival=1.0),  # the short job
        ]
        capacity = 16.0  # 8 nodes x 2 map slots
        fifo = {o.name: o for o in simulate_schedule(jobs, capacity, policy="fifo")}
        fair = {o.name: o for o in simulate_schedule(jobs, capacity, policy="fair")}

        assert fair["S13"].latency <= fifo["S13"].latency + 1e-9
        # With parallelism caps the policies can pack capacity slightly
        # differently; fair must never be meaningfully worse overall.
        assert max(o.finish for o in fair.values()) <= (
            max(o.finish for o in fifo.values()) * 1.05
        )
        # mean_latency is reported, not asserted: fair sharing optimises
        # fairness, not mean latency (SRPT would).
        assert mean_latency(list(fair.values())) > 0
