"""Property-based tests of the Map-Reduce engine: results must be
independent of task counts, combiner usage, and runner choice, and match
straightforward reference computations."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runner import SerialRunner
from repro.mapreduce.shuffle import default_partitioner
from repro.mapreduce.types import JobConf, stable_hash


def tokenize(key, value):
    for word in value.split():
        yield word, 1


def total(key, values):
    yield key, sum(values)


WORDCOUNT = MapReduceJob(name="wc", mapper=tokenize, reducer=total, combiner=total)

docs = st.lists(
    st.text(alphabet="ab c", min_size=0, max_size=30), min_size=0, max_size=20
)
confs = st.builds(
    JobConf,
    num_map_tasks=st.integers(1, 7),
    num_reduce_tasks=st.integers(1, 5),
    use_combiner=st.booleans(),
)


class TestEngineProperties:
    @given(docs, confs)
    @settings(max_examples=80, deadline=None)
    def test_wordcount_matches_reference(self, texts, conf):
        inputs = list(enumerate(texts))
        result = SerialRunner(trace=False).run(WORDCOUNT, inputs, conf)
        reference = Counter(w for t in texts for w in t.split())
        assert dict(result.output) == dict(reference)

    @given(docs)
    @settings(max_examples=40, deadline=None)
    def test_invariant_to_task_counts(self, texts):
        inputs = list(enumerate(texts))
        runner = SerialRunner(trace=False)
        baseline = dict(runner.run(WORDCOUNT, inputs, JobConf()).output)
        for m, r in ((3, 1), (1, 4), (5, 3)):
            out = dict(
                runner.run(
                    WORDCOUNT, inputs, JobConf(num_map_tasks=m, num_reduce_tasks=r)
                ).output
            )
            assert out == baseline

    @given(docs)
    @settings(max_examples=40, deadline=None)
    def test_combiner_neutrality(self, texts):
        """A correct (associative/commutative) combiner never changes the
        job's result."""
        inputs = list(enumerate(texts))
        runner = SerialRunner(trace=False)
        with_comb = runner.run(
            WORDCOUNT, inputs, JobConf(num_map_tasks=3, use_combiner=True)
        )
        without = runner.run(
            WORDCOUNT, inputs, JobConf(num_map_tasks=3, use_combiner=False)
        )
        assert dict(with_comb.output) == dict(without.output)

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers()), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_identity_job_preserves_multiset(self, pairs):
        job = MapReduceJob(
            name="id",
            mapper=lambda k, v: [(k, v)],
            reducer=lambda k, vs: [(k, v) for v in vs],
        )
        result = SerialRunner(trace=False).run(
            job, pairs, JobConf(num_map_tasks=3, num_reduce_tasks=3)
        )
        assert Counter(result.output) == Counter(pairs)

    @given(st.lists(st.text(max_size=10), min_size=1, max_size=50), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_partitioner_is_total_and_stable(self, keys, parts):
        for key in keys:
            p1 = default_partitioner(key, parts)
            p2 = default_partitioner(key, parts)
            assert p1 == p2
            assert 0 <= p1 < parts

    @given(st.text(max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_stable_hash_deterministic(self, key):
        assert stable_hash(key) == stable_hash(key)
