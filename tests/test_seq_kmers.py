"""Tests for vectorised k-mer extraction, including a property-based
cross-check against the string reference implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KmerError
from repro.seq.kmers import (
    code_to_kmer,
    kmer_codes,
    kmer_counts,
    kmer_set,
    kmer_strings,
    max_kmer_code,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=200)


class TestKmerCodes:
    def test_known_values(self):
        # AC = 0*4 + 1 = 1; CG = 1*4+2 = 6; GT = 2*4+3 = 11
        assert kmer_codes("ACGT", 2).tolist() == [1, 6, 11]

    def test_count(self):
        assert kmer_codes("ACGTACGT", 3).size == 6

    def test_k_equals_length(self):
        codes = kmer_codes("ACGT", 4)
        assert codes.tolist() == [0 * 64 + 1 * 16 + 2 * 4 + 3]

    def test_too_short_strict(self):
        with pytest.raises(KmerError, match="shorter than"):
            kmer_codes("AC", 3)

    def test_too_short_nonstrict(self):
        assert kmer_codes("AC", 3, strict=False).size == 0

    def test_ambiguous_strict_rejected(self):
        with pytest.raises(Exception):
            kmer_codes("ACNGT", 2)

    def test_ambiguous_nonstrict_skips_windows(self):
        codes = kmer_codes("ACNGT", 2, strict=False)
        # Windows AC, GT survive; CN, NG dropped.
        assert codes.tolist() == [1, 11]

    def test_invalid_k(self):
        with pytest.raises(KmerError):
            kmer_codes("ACGT", 0)
        with pytest.raises(KmerError):
            kmer_codes("ACGT", 32)
        with pytest.raises(KmerError):
            kmer_codes("ACGT", 2.5)  # type: ignore[arg-type]

    @given(dna, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_matches_string_reference(self, seq, k):
        """Vectorised codes must equal encoding each string k-mer."""
        if len(seq) < k:
            return
        fast = kmer_codes(seq, k).tolist()
        slow = [
            sum(4 ** (k - 1 - i) * "ACGT".index(c) for i, c in enumerate(w))
            for w in kmer_strings(seq, k)
        ]
        assert fast == slow


class TestKmerSet:
    def test_unique_and_sorted(self):
        s = kmer_set("AAAA", 2)
        assert s.tolist() == [0]

    def test_is_set_of_codes(self):
        s = set(kmer_set("ACGTACGT", 2).tolist())
        assert s == set(kmer_codes("ACGTACGT", 2).tolist())


class TestKmerCounts:
    def test_multiplicity(self):
        counts = kmer_counts("AAAA", 2)
        assert counts == {0: 3}

    def test_total(self):
        counts = kmer_counts("ACGTACG", 3)
        assert sum(counts.values()) == 5


class TestCodecHelpers:
    def test_max_kmer_code(self):
        assert max_kmer_code(3) == 64

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0))
    @settings(max_examples=50, deadline=None)
    def test_code_to_kmer_roundtrip(self, k, raw):
        code = raw % (4**k)
        kmer = code_to_kmer(code, k)
        assert len(kmer) == k
        back = kmer_codes(kmer, k)[0]
        assert int(back) == code

    def test_code_out_of_range(self):
        with pytest.raises(KmerError):
            code_to_kmer(64, 3)

    def test_strings_too_short(self):
        with pytest.raises(KmerError):
            kmer_strings("AC", 3)
