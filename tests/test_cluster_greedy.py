"""Tests for the greedy clustering algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.cluster.greedy import greedy_cluster
from repro.minhash.sketch import MinHashSketch


def sketches_from_rows(rows, key=(4, 1000, 0)):
    return [
        MinHashSketch(f"s{i}", np.asarray(row, dtype=np.int64), family_key=key)
        for i, row in enumerate(rows)
    ]


class TestGreedyBasics:
    def test_identical_sketches_one_cluster(self):
        sk = sketches_from_rows([[1, 2, 3, 4]] * 5)
        a = greedy_cluster(sk, threshold=1.0)
        assert a.num_clusters == 1

    def test_distinct_sketches_singletons(self):
        sk = sketches_from_rows([[1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 12]])
        a = greedy_cluster(sk, threshold=0.5)
        assert a.num_clusters == 3

    def test_threshold_zero_single_cluster(self):
        sk = sketches_from_rows([[1, 2, 3, 4], [5, 6, 7, 8]])
        a = greedy_cluster(sk, threshold=0.0)
        assert a.num_clusters == 1

    def test_representative_is_first_unassigned(self):
        # s0 and s2 similar; s1 different.  First cluster forms around s0.
        sk = sketches_from_rows([[1, 2, 3, 4], [9, 9, 9, 9], [1, 2, 3, 4]])
        a = greedy_cluster(sk, threshold=0.9)
        assert a["s0"] == a["s2"] == 0
        assert a["s1"] == 1

    def test_labels_in_creation_order(self):
        sk = sketches_from_rows([[1] * 4, [2] * 4, [3] * 4])
        a = greedy_cluster(sk, threshold=0.9)
        assert [a[f"s{i}"] for i in range(3)] == [0, 1, 2]

    def test_lower_threshold_fewer_clusters(self):
        """The paper: 'lower value of θ allows more sequences to go into
        the same cluster, resulting in less number of total clusters'."""
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 20, size=(30, 16))
        sk = sketches_from_rows(rows.tolist())
        high = greedy_cluster(sk, threshold=0.9).num_clusters
        low = greedy_cluster(sk, threshold=0.2).num_clusters
        assert low <= high


class TestGreedyEstimators:
    def test_positional(self):
        sk = sketches_from_rows([[1, 2, 3, 4], [1, 2, 9, 9]])
        # 50% positional match.
        a = greedy_cluster(sk, threshold=0.5, estimator="positional")
        assert a.num_clusters == 1
        b = greedy_cluster(sk, threshold=0.6, estimator="positional")
        assert b.num_clusters == 2

    def test_set_vs_positional_duplicates(self):
        # Positionally 0% match, set-identical.
        sk = sketches_from_rows([[1, 1, 2, 2], [2, 2, 1, 1]])
        assert greedy_cluster(sk, 0.9, estimator="set").num_clusters == 1
        assert greedy_cluster(sk, 0.9, estimator="positional").num_clusters == 2

    def test_unknown_estimator(self):
        sk = sketches_from_rows([[1, 2, 3, 4]])
        with pytest.raises(ClusteringError, match="unknown estimator"):
            greedy_cluster(sk, 0.5, estimator="nope")


class TestGreedyValidation:
    def test_empty_rejected(self):
        with pytest.raises(ClusteringError):
            greedy_cluster([], 0.5)

    def test_bad_threshold(self):
        sk = sketches_from_rows([[1, 2, 3, 4]])
        with pytest.raises(ClusteringError):
            greedy_cluster(sk, 1.5)

    def test_duplicate_ids_rejected(self):
        sk = [
            MinHashSketch("dup", np.array([1, 2, 3, 4])),
            MinHashSketch("dup", np.array([1, 2, 3, 4])),
        ]
        with pytest.raises(ClusteringError, match="unique"):
            greedy_cluster(sk, 0.5)

    def test_every_sequence_assigned(self):
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 50, size=(40, 8))
        sk = sketches_from_rows(rows.tolist())
        a = greedy_cluster(sk, threshold=0.5)
        assert a.num_sequences == 40


class TestGreedyOnRealData:
    def test_separates_families(self, two_family_sketches, two_family_records):
        a = greedy_cluster(two_family_sketches, threshold=0.5, estimator="positional")
        labels = {r.read_id: r.label for r in two_family_records}
        # No cluster mixes the two families.
        for _cl, members in a.clusters().items():
            assert len({labels[m] for m in members}) == 1
