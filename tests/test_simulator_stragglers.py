"""Tests for heterogeneous nodes and speculative execution in the
cluster simulator."""

import pytest

from repro.errors import SimulationError
from repro.mapreduce.costmodel import HadoopCostModel
from repro.mapreduce.simulator import ClusterSimulator, ClusterSpec
from repro.mapreduce.types import JobTrace, TaskTrace


def trace(num_maps=16, cpu=2.0):
    t = JobTrace(job_name="t")
    for i in range(num_maps):
        t.map_tasks.append(
            TaskTrace(task_id=f"m{i}", kind="map", records_in=10, cpu_seconds=cpu)
        )
    t.reduce_tasks.append(
        TaskTrace(task_id="r0", kind="reduce", records_in=10, cpu_seconds=0.5)
    )
    return t


MODEL = HadoopCostModel(job_startup_s=0.0, task_launch_s=0.0, hdfs_read_bw=1e12)


def makespan(spec):
    return ClusterSimulator(spec, MODEL).simulate_job(trace()).total_s


class TestSpeedFactors:
    def test_no_stragglers_all_nominal(self):
        spec = ClusterSpec(num_nodes=4)
        assert spec.node_speed_factors() == [1.0] * 4

    def test_fraction_rounds(self):
        spec = ClusterSpec(num_nodes=4, straggler_fraction=0.5, straggler_slowdown=2.0)
        factors = spec.node_speed_factors()
        assert sorted(factors) == [1.0, 1.0, 2.0, 2.0]

    def test_deterministic_by_seed(self):
        a = ClusterSpec(num_nodes=8, straggler_fraction=0.25, straggler_seed=3)
        b = ClusterSpec(num_nodes=8, straggler_fraction=0.25, straggler_seed=3)
        assert a.node_speed_factors() == b.node_speed_factors()

    def test_validation(self):
        with pytest.raises(SimulationError):
            ClusterSpec(num_nodes=2, straggler_fraction=1.5)
        with pytest.raises(SimulationError):
            ClusterSpec(num_nodes=2, straggler_slowdown=0.5)


class TestStragglerImpact:
    def test_stragglers_inflate_makespan(self):
        healthy = makespan(ClusterSpec(num_nodes=4))
        degraded = makespan(
            ClusterSpec(num_nodes=4, straggler_fraction=0.25, straggler_slowdown=4.0)
        )
        assert degraded > healthy * 1.3

    def test_speculation_recovers_most_of_it(self):
        healthy = makespan(ClusterSpec(num_nodes=4))
        degraded = makespan(
            ClusterSpec(num_nodes=4, straggler_fraction=0.25, straggler_slowdown=4.0)
        )
        rescued = makespan(
            ClusterSpec(
                num_nodes=4,
                straggler_fraction=0.25,
                straggler_slowdown=4.0,
                speculative_execution=True,
            )
        )
        assert rescued < degraded
        assert rescued < healthy * 2.0

    def test_speculation_noop_without_stragglers(self):
        plain = makespan(ClusterSpec(num_nodes=4))
        spec = makespan(ClusterSpec(num_nodes=4, speculative_execution=True))
        assert spec == pytest.approx(plain)

    def test_speculative_attempts_counted(self):
        spec = ClusterSpec(
            num_nodes=4, straggler_fraction=0.5, straggler_slowdown=3.0,
            speculative_execution=True,
        )
        report = ClusterSimulator(spec, MODEL).simulate_job(trace())
        assert report.speculative_attempts > 0

    def test_single_slot_cluster_never_deadlocks(self):
        spec = ClusterSpec(
            num_nodes=1, map_slots_per_node=1, straggler_fraction=1.0,
            straggler_slowdown=5.0, speculative_execution=True,
        )
        report = ClusterSimulator(spec, MODEL).simulate_job(trace(num_maps=4))
        assert report.total_s > 0
        assert report.speculative_attempts == 0

    def test_reduce_phase_affected_by_stragglers(self):
        all_slow = ClusterSpec(
            num_nodes=2, straggler_fraction=1.0, straggler_slowdown=3.0
        )
        healthy = ClusterSpec(num_nodes=2)
        slow_report = ClusterSimulator(all_slow, MODEL).simulate_job(trace())
        fast_report = ClusterSimulator(healthy, MODEL).simulate_job(trace())
        assert slow_report.reduce_phase_s == pytest.approx(
            fast_report.reduce_phase_s * 3.0
        )
