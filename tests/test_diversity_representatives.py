"""Tests for diversity metrics, representative selection, and
multi-threshold dendrogram cuts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClusteringError, EvaluationError
from repro.cluster.assignments import ClusterAssignment
from repro.cluster.hierarchical import build_dendrogram, multi_threshold_cut
from repro.cluster.representatives import (
    representative_records,
    select_representatives,
)
from repro.eval.diversity import (
    chao1,
    goods_coverage,
    rarefaction_curve,
    shannon_index,
    simpson_index,
)
from repro.minhash.sketch import MinHashSketch
from repro.seq.records import SequenceRecord


def assignment_from_sizes(sizes):
    labels = {}
    i = 0
    for cluster, size in enumerate(sizes):
        for _ in range(size):
            labels[f"r{i}"] = cluster
            i += 1
    return ClusterAssignment(labels)


class TestChao1:
    def test_no_singletons_equals_observed(self):
        a = assignment_from_sizes([5, 4, 3])
        assert chao1(a) == 3.0

    def test_singleton_correction(self):
        # S_obs=4, F1=2, F2=1 -> 4 + 4/2 = 6.
        a = assignment_from_sizes([5, 2, 1, 1])
        assert chao1(a) == pytest.approx(6.0)

    def test_no_doubletons_bias_corrected(self):
        # S_obs=3, F1=2, F2=0 -> 3 + 2*1/2 = 4.
        a = assignment_from_sizes([5, 1, 1])
        assert chao1(a) == pytest.approx(4.0)

    def test_at_least_observed(self):
        for sizes in ([1], [3, 1, 1, 1], [10, 10]):
            a = assignment_from_sizes(sizes)
            assert chao1(a) >= a.num_clusters


class TestShannonSimpson:
    def test_single_otu_zero(self):
        a = assignment_from_sizes([10])
        assert shannon_index(a) == pytest.approx(0.0)
        assert simpson_index(a) == pytest.approx(0.0)

    def test_even_community_maximal(self):
        even = assignment_from_sizes([5, 5, 5, 5])
        skewed = assignment_from_sizes([17, 1, 1, 1])
        assert shannon_index(even) > shannon_index(skewed)
        assert simpson_index(even) > simpson_index(skewed)
        assert shannon_index(even) == pytest.approx(np.log(4))
        assert simpson_index(even) == pytest.approx(0.75)

    @given(st.lists(st.integers(1, 20), min_size=1, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, sizes):
        a = assignment_from_sizes(sizes)
        assert 0.0 <= shannon_index(a) <= np.log(len(sizes)) + 1e-9
        assert 0.0 <= simpson_index(a) < 1.0


class TestCoverageRarefaction:
    def test_coverage(self):
        a = assignment_from_sizes([8, 1, 1])  # F1=2, N=10
        assert goods_coverage(a) == pytest.approx(0.8)

    def test_rarefaction_endpoints(self):
        a = assignment_from_sizes([5, 3, 2])
        curve = rarefaction_curve(a, depths=[1, 10])
        assert curve[0][1] == pytest.approx(1.0)  # one read -> one OTU
        assert curve[-1][1] == pytest.approx(3.0)  # full depth -> all OTUs

    def test_monotone_nondecreasing(self):
        a = assignment_from_sizes([20, 5, 3, 1, 1])
        curve = rarefaction_curve(a)
        values = [v for _, v in curve]
        assert values == sorted(values)

    def test_bad_depth(self):
        a = assignment_from_sizes([3])
        with pytest.raises(EvaluationError):
            rarefaction_curve(a, depths=[0])
        with pytest.raises(EvaluationError):
            rarefaction_curve(a, depths=[99])


def make_sketches(rows):
    return [
        MinHashSketch(f"r{i}", np.asarray(row, dtype=np.int64), family_key=(4, 10, 0))
        for i, row in enumerate(rows)
    ]


class TestRepresentatives:
    def test_medoid_is_central(self):
        # r0 and r1 identical; r2 differs: in a single cluster the medoid
        # must be one of the two identical members.
        sketches = make_sketches([[1, 2, 3, 4], [1, 2, 3, 4], [9, 9, 3, 4]])
        a = ClusterAssignment({"r0": 0, "r1": 0, "r2": 0})
        reps = select_representatives(a, sketches, policy="medoid")
        assert reps[0] in ("r0", "r1")

    def test_singleton(self):
        sketches = make_sketches([[1, 2, 3, 4]])
        a = ClusterAssignment({"r0": 0})
        assert select_representatives(a, sketches)[0] == "r0"

    def test_longest_policy(self):
        sketches = make_sketches([[1, 2, 3, 4], [1, 2, 3, 4]])
        a = ClusterAssignment({"r0": 0, "r1": 0})
        seqs = {"r0": "ACGT", "r1": "ACGTACGT"}
        reps = select_representatives(a, sketches, policy="longest", sequences=seqs)
        assert reps[0] == "r1"

    def test_one_rep_per_cluster(self):
        sketches = make_sketches([[1] * 4, [1] * 4, [2] * 4, [3] * 4])
        a = ClusterAssignment({"r0": 0, "r1": 0, "r2": 1, "r3": 2})
        reps = select_representatives(a, sketches)
        assert set(reps) == {0, 1, 2}
        for label, rid in reps.items():
            assert a[rid] == label

    def test_validation(self):
        sketches = make_sketches([[1, 2, 3, 4]])
        a = ClusterAssignment({"r0": 0})
        with pytest.raises(ClusteringError):
            select_representatives(a, sketches, policy="rand")
        with pytest.raises(ClusteringError, match="needs sequences"):
            select_representatives(a, sketches, policy="longest")
        with pytest.raises(ClusteringError, match="no sketch"):
            select_representatives(ClusterAssignment({"zz": 0}), sketches)

    def test_representative_records(self):
        sketches = make_sketches([[1] * 4, [2] * 4])
        a = ClusterAssignment({"r0": 0, "r1": 1})
        records = [SequenceRecord("r0", "ACGT"), SequenceRecord("r1", "TTTT")]
        reps = representative_records(a, sketches, records)
        assert [r.read_id for r in reps] == ["r0", "r1"]


class TestMultiThresholdCut:
    def test_nested_partitions(self):
        rng = np.random.default_rng(0)
        base = rng.random((10, 10))
        sim = (base + base.T) / 2
        np.fill_diagonal(sim, 1.0)
        d = build_dendrogram(sim)
        ids = [f"r{i}" for i in range(10)]
        cuts = multi_threshold_cut(d, ids, [0.3, 0.6, 0.9])
        # Nesting: co-members at high θ stay together at lower θ.
        for hi, lo in ((0.9, 0.6), (0.6, 0.3)):
            for a in ids:
                for b in ids:
                    if cuts[hi][a] == cuts[hi][b]:
                        assert cuts[lo][a] == cuts[lo][b]

    def test_counts_monotone(self):
        rng = np.random.default_rng(1)
        base = rng.random((12, 12))
        sim = (base + base.T) / 2
        np.fill_diagonal(sim, 1.0)
        d = build_dendrogram(sim)
        ids = [f"r{i}" for i in range(12)]
        cuts = multi_threshold_cut(d, ids, [0.2, 0.5, 0.8])
        assert (
            cuts[0.2].num_clusters
            <= cuts[0.5].num_clusters
            <= cuts[0.8].num_clusters
        )

    def test_validation(self):
        d = build_dendrogram(np.array([[1.0, 0.5], [0.5, 1.0]]))
        with pytest.raises(ClusteringError):
            multi_threshold_cut(d, ["a", "b"], [])
        with pytest.raises(ClusteringError):
            multi_threshold_cut(d, ["a"], [0.5])
        with pytest.raises(ClusteringError):
            multi_threshold_cut(d, ["a", "b"], [1.5])
