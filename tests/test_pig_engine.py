"""Tests for Pig relations, UDFs, and the engine end-to-end — including
equivalence between the Algorithm 3 script and the direct pipeline."""

import numpy as np
import pytest

from repro.errors import PigError
from repro.cluster.pipeline import MrMCMinH
from repro.datasets import generate_whole_metagenome_sample
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.pig import (
    MRMC_MINH_SCRIPT,
    PigEngine,
    Relation,
    default_params,
    get_udf,
    register_udf,
)
from repro.pig.udf import UDF_REGISTRY
from repro.seq.fasta import format_fasta
from repro.seq.records import SequenceRecord


@pytest.fixture
def hdfs():
    return SimulatedHDFS(3, block_size=4096)


@pytest.fixture
def sample_records():
    return generate_whole_metagenome_sample("S1", num_reads=30, genome_length=3000)


class TestRelation:
    def test_field_access(self):
        rel = Relation("A", ("x", "y"), [(1, 2), (3, 4)])
        assert rel.field_index("y") == 1
        assert rel.column("x") == [1, 3]
        assert len(rel) == 2

    def test_unknown_field(self):
        rel = Relation("A", ("x",), [])
        with pytest.raises(PigError, match="no field"):
            rel.field_index("z")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(PigError):
            Relation("A", ("x", "x"), [])

    def test_arity_validation(self):
        rel = Relation("A", ("x", "y"), [(1,)])
        with pytest.raises(PigError, match="arity"):
            rel.validate_rows()


class TestUdfRegistry:
    def test_paper_udfs_registered(self):
        for name in (
            "FastaStorage",
            "StringGenerator",
            "TranslateToKmer",
            "CalculateMinwiseHash",
            "CalculatePairwiseSimilarity",
            "AgglomerativeHierarchicalClustering",
            "GreedyClustering",
        ):
            assert name in UDF_REGISTRY

    def test_unknown_udf(self):
        with pytest.raises(PigError, match="unknown UDF"):
            get_udf("Nonexistent")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(PigError, match="already registered"):
            register_udf("FastaStorage")(lambda: None)

    def test_modes(self):
        assert get_udf("FastaStorage").mode == "loader"
        assert get_udf("StringGenerator").mode == "row"
        assert get_udf("CalculateMinwiseHash").mode == "grouped"
        assert get_udf("CalculateMinwiseHash").group_key == 1
        assert get_udf("GreedyClustering").group_key is None


class TestEngineStatements:
    def test_load(self, hdfs):
        hdfs.put("/in.fa", ">r1\nACGT\n>r2\nTTTT\n")
        engine = PigEngine(hdfs)
        res = engine.run("A = LOAD '/in.fa' USING FastaStorage AS (readid, d, seq, header);")
        rel = res.relations["A"]
        assert rel.rows == [("r1", 4, "ACGT", "r1"), ("r2", 4, "TTTT", "r2")]

    def test_foreach_row_udf(self, hdfs):
        hdfs.put("/in.fa", ">r1\nACGTN\n")
        engine = PigEngine(hdfs)
        res = engine.run(
            "A = LOAD '/in.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "B = FOREACH A GENERATE FLATTEN (StringGenerator(seq, readid)) AS (seq, seqid);"
        )
        assert res.relations["B"].rows == [("ACGT", "r1")]

    def test_foreach_projection(self, hdfs):
        hdfs.put("/in.fa", ">r1\nACGT\n")
        engine = PigEngine(hdfs)
        res = engine.run(
            "A = LOAD '/in.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "B = FOREACH A GENERATE seq, readid;"
        )
        assert res.relations["B"].rows == [("ACGT", "r1")]
        assert res.relations["B"].fields == ("seq", "readid")

    def test_group_all(self, hdfs):
        hdfs.put("/in.fa", ">r1\nACGT\n>r2\nGGGG\n")
        engine = PigEngine(hdfs)
        res = engine.run(
            "A = LOAD '/in.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "I = GROUP A ALL;"
        )
        rel = res.relations["I"]
        assert len(rel) == 1
        key, bag = rel.rows[0]
        assert key == "all"
        assert len(bag) == 2

    def test_group_by(self, hdfs):
        hdfs.put("/in.fa", ">r1\nACGT\n>r2\nACGT\n")
        engine = PigEngine(hdfs)
        res = engine.run(
            "A = LOAD '/in.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "G = GROUP A BY seq;"
        )
        rel = res.relations["G"]
        assert len(rel) == 1  # both rows share seq ACGT
        assert len(rel.rows[0][1]) == 2

    def test_store(self, hdfs):
        hdfs.put("/in.fa", ">r1\nACGT\n")
        engine = PigEngine(hdfs)
        engine.run(
            "A = LOAD '/in.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "STORE A INTO '/out';"
        )
        assert hdfs.get_text("/out") == "r1\t4\tACGT\tr1\n"

    def test_unknown_relation(self, hdfs):
        engine = PigEngine(hdfs)
        with pytest.raises(PigError, match="unknown relation"):
            engine.run("STORE Z INTO '/out';")

    def test_kmer_udf_counts(self, hdfs):
        hdfs.put("/in.fa", ">r1\nACGTAC\n")
        engine = PigEngine(hdfs)
        res = engine.run(
            "A = LOAD '/in.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "B = FOREACH A GENERATE FLATTEN (StringGenerator(seq, readid)) AS (seq, seqid);\n"
            "C = FOREACH B GENERATE FLATTEN (TranslateToKmer(seq, seqid, 3)) AS (seqkmer, seqid2);"
        )
        assert len(res.relations["C"]) == 4  # 6 - 3 + 1


class TestAlgorithm3EndToEnd:
    def test_script_matches_direct_pipeline(self, hdfs, sample_records):
        """Running Algorithm 3 must reproduce MrMCMinH.fit exactly
        (hierarchical partition and greedy partition)."""
        hdfs.put("/in.fa", format_fasta(sample_records))
        params = default_params(input_path="/in.fa", kmer=5, num_hashes=40, cutoff=0.78)
        engine = PigEngine(hdfs)
        res = engine.run(MRMC_MINH_SCRIPT, params)

        script_hier = {rid: lbl for rid, lbl in res.relations["K"].rows}
        script_greedy = {rid: lbl for rid, lbl in res.relations["L"].rows}

        direct_hier = MrMCMinH(
            kmer_size=5, num_hashes=40, threshold=0.78, method="hierarchical", seed=0
        ).fit(sample_records).assignment
        direct_greedy = MrMCMinH(
            kmer_size=5, num_hashes=40, threshold=0.78, method="greedy",
            estimator="set", seed=0,
        ).fit(sample_records).assignment

        def partition(labels):
            groups = {}
            for rid, lbl in labels.items():
                groups.setdefault(lbl, set()).add(rid)
            return {frozenset(g) for g in groups.values()}

        assert partition(script_hier) == partition(dict(direct_hier))
        assert partition(script_greedy) == partition(dict(direct_greedy))

    def test_outputs_stored(self, hdfs, sample_records):
        hdfs.put("/in.fa", format_fasta(sample_records))
        params = default_params(input_path="/in.fa", kmer=5, num_hashes=40, cutoff=0.78)
        res = PigEngine(hdfs).run(MRMC_MINH_SCRIPT, params)
        assert set(res.stored) == {"/out/hier", "/out/greedy"}
        hier_lines = hdfs.get_text("/out/hier").strip().splitlines()
        assert len(hier_lines) == len(sample_records)

    def test_traces_cover_foreach_jobs(self, hdfs, sample_records):
        hdfs.put("/in.fa", format_fasta(sample_records))
        params = default_params(input_path="/in.fa", kmer=5, num_hashes=40, cutoff=0.78)
        res = PigEngine(hdfs).run(MRMC_MINH_SCRIPT, params)
        names = [t.job_name for t in res.traces]
        assert "pig-foreach-B" in names
        assert "pig-foreach-E" in names  # the grouped minwise job
        assert "pig-foreach-J" in names  # the pairwise similarity job
