"""Unit tests for the engine-sparse LSH job chain (repro.cluster.sparse_jobs)."""

import numpy as np
import pytest

from repro.cluster.pipeline import MrMCMinH, SPARSE_AUTO_CUTOFF
from repro.cluster.sparse import (
    candidate_pairs,
    sparse_greedy_cluster,
    sparse_single_linkage,
)
from repro.cluster.sparse_jobs import (
    LshBandMapper,
    SketchSideData,
    engine_candidate_pairs,
    engine_sparse_cluster,
    run_sparse_jobs,
)
from repro.errors import ClusteringError, SparseCompatibilityError
from repro.minhash.sketch import sketches_from_matrix
from repro.minhash.wire import effective_threshold


def make_sketches(n=30, num_hashes=16, universe=12, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, universe, size=(n, num_hashes)).astype(np.int64)
    return sketches_from_matrix(
        values, [f"r{i}" for i in range(n)], (num_hashes, 1 << 30, seed)
    )


class TestCandidateParity:
    def test_pairs_equal_in_process_join(self):
        sketches = make_sketches()
        pairs, run = engine_candidate_pairs(sketches)
        assert pairs == candidate_pairs(sketches)
        assert run.rounds == 2
        assert run.shuffle_bytes > 0

    def test_max_group_cap_applied_identically(self):
        sketches = make_sketches(universe=4)  # big collision groups
        pairs, _ = engine_candidate_pairs(sketches, max_group=8)
        assert pairs == candidate_pairs(sketches, max_group=8)

    def test_min_shared_filter(self):
        sketches = make_sketches()
        pairs, _ = engine_candidate_pairs(sketches, min_shared=3)
        assert pairs == candidate_pairs(sketches, min_shared=3)
        assert all(c >= 3 for c in pairs.values())

    def test_wider_bands_generate_a_subset(self):
        sketches = make_sketches()
        base, _ = engine_candidate_pairs(sketches)
        banded, _ = engine_candidate_pairs(sketches, band_size=4)
        assert set(banded) <= set(base)

    def test_verified_match_is_true_positional_fraction(self):
        sketches = make_sketches()
        run = run_sparse_jobs(sketches)
        matrix = np.stack([s.values for s in sketches])
        for (i, j), match in run.matches.items():
            expected = np.count_nonzero(matrix[i] == matrix[j]) / matrix.shape[1]
            assert match == expected


class TestClusteringParity:
    @pytest.mark.parametrize("threshold", [0.125, 0.25, 0.5, 0.75])
    def test_single_linkage_byte_identical(self, threshold):
        sketches = make_sketches()
        a = sparse_single_linkage(sketches, threshold)
        b = engine_sparse_cluster(sketches, threshold, method="hierarchical")
        assert a.to_tsv() == b.assignment.to_tsv()

    @pytest.mark.parametrize("threshold", [0.125, 0.25, 0.5, 0.75])
    def test_greedy_byte_identical(self, threshold):
        sketches = make_sketches()
        a = sparse_greedy_cluster(sketches, threshold)
        b = engine_sparse_cluster(sketches, threshold, method="greedy")
        assert a.to_tsv() == b.assignment.to_tsv()

    def test_wire_bits_thresholds_in_low_bit_space(self):
        sketches = make_sketches(universe=200)
        threshold = 0.5
        run = run_sparse_jobs(
            sketches, threshold, method="hierarchical", wire_bits=4
        )
        assert run.wire_bits == 4
        theta_eff = effective_threshold(threshold, 4)
        matrix = np.stack([s.values for s in sketches]) & 0xF
        for pair in run.edges:
            i, j = pair
            match = np.count_nonzero(matrix[i] == matrix[j]) / matrix.shape[1]
            assert match >= theta_eff

    def test_candidate_only_run_has_no_assignment(self):
        run = run_sparse_jobs(make_sketches())
        assert run.assignment is None
        assert run.edges == []
        assert run.threshold is None


class TestValidation:
    def test_empty_sketches_rejected(self):
        with pytest.raises(ClusteringError, match="no sketches"):
            run_sparse_jobs([])

    def test_band_size_must_divide_num_hashes(self):
        with pytest.raises(SparseCompatibilityError, match="band_size"):
            run_sparse_jobs(make_sketches(num_hashes=16), band_size=5)

    def test_band_size_must_be_positive(self):
        with pytest.raises(SparseCompatibilityError, match="band_size"):
            run_sparse_jobs(make_sketches(), band_size=0)

    def test_threshold_range(self):
        with pytest.raises(ClusteringError, match="threshold"):
            run_sparse_jobs(make_sketches(), 0.0)
        with pytest.raises(ClusteringError, match="threshold"):
            run_sparse_jobs(make_sketches(), 1.5)

    def test_unknown_method(self):
        with pytest.raises(ClusteringError, match="method"):
            run_sparse_jobs(make_sketches(), 0.5, method="kmeans")

    def test_min_shared_validated(self):
        with pytest.raises(ClusteringError, match="min_shared"):
            run_sparse_jobs(make_sketches(), min_shared=0)


class TestSideData:
    def test_full_precision_roundtrip(self):
        matrix = np.arange(24, dtype=np.int64).reshape(4, 6)
        side = SketchSideData.pack(matrix)
        assert np.array_equal(side.matrix(), matrix)

    def test_bbit_roundtrip_masks_low_bits(self):
        matrix = np.arange(24, dtype=np.int64).reshape(4, 6) * 7
        side = SketchSideData.pack(matrix, bits=4)
        assert np.array_equal(side.matrix(), matrix & 0xF)

    def test_crc_detects_corruption(self):
        side = SketchSideData.pack(np.zeros((2, 2), dtype=np.int64))
        corrupt = SketchSideData(
            payload=side.payload, crc=side.crc ^ 1,
            num_records=2, num_hashes=2, bits=None,
        )
        with pytest.raises(ClusteringError, match="CRC"):
            corrupt.matrix()


class TestMapperSemantics:
    def test_band1_key_is_hash_index_and_value(self):
        mapper = LshBandMapper(1)
        out = list(mapper(7, [10, 20, 30]))
        assert out == [((0, 10), 7), ((1, 20), 7), ((2, 30), 7)]

    def test_wide_bands_emit_one_key_per_band(self):
        mapper = LshBandMapper(2)
        out = list(mapper(3, [10, 20, 30, 40]))
        assert [k[0] for k, _ in out] == [0, 1]
        assert all(v == 3 for _, v in out)


class TestObservability:
    def test_traces_and_metrics_recorded(self):
        from repro.obs import Tracer

        tracer = Tracer()
        with tracer.activate():
            run = run_sparse_jobs(make_sketches(), 0.5)
        names = [s.name for s in tracer.spans]
        assert "phase:lsh-candidates" in names
        assert "phase:verify" in names
        assert "phase:cluster" in names
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["sparse_jobs.candidate_pairs"] == len(run.pairs)
        assert gauges["sparse_jobs.rounds"] == 2
        assert gauges["sparse_jobs.shuffle_bytes"] == run.shuffle_bytes

    def test_counters_carry_pair_accounting(self):
        run = run_sparse_jobs(make_sketches(), 0.5)
        stats = run.counters.as_dict()["sparse_jobs"]
        assert stats["candidate_pairs"] == len(run.pairs)
        assert stats["rounds"] == 2


class TestPipelineIntegration:
    def test_engine_mode_matches_in_process_sparse(self, two_family_records):
        base = dict(
            kmer_size=5, num_hashes=32, threshold=0.6,
            method="hierarchical", linkage="single", seed=1,
        )
        a = MrMCMinH(sparse=True, **base).fit(two_family_records)
        b = MrMCMinH(sparse="engine", **base).fit(two_family_records)
        assert a.assignment.to_tsv() == b.assignment.to_tsv()
        assert b.mode == "engine"
        assert b.sparse_stats["rounds"] == 2
        assert b.sparse_stats["shuffle_bytes"] > 0

    def test_auto_resolves_dense_below_cutoff(self, two_family_records):
        run = MrMCMinH(kmer_size=5, num_hashes=32, threshold=0.6).fit(
            two_family_records
        )
        assert run.mode == "dense"
        assert run.sparse_stats is None

    def test_auto_resolves_engine_above_cutoff(self, two_family_records):
        model = MrMCMinH(
            kmer_size=5, num_hashes=32, threshold=0.6,
            method="hierarchical", linkage="single", sparse_cutoff=4,
        )
        run = model.fit(two_family_records)
        assert run.mode == "engine"
        assert run.sparse_stats["candidate_pairs"] > 0

    def test_auto_stays_dense_for_inexact_shapes(self, two_family_records):
        # Average linkage is never sparse-exact: auto must not flip.
        run = MrMCMinH(
            kmer_size=5, num_hashes=32, threshold=0.6,
            method="hierarchical", linkage="average", sparse_cutoff=4,
        ).fit(two_family_records)
        assert run.mode == "dense"
        # An explicitly requested set estimator pins dense too.
        run = MrMCMinH(
            kmer_size=5, num_hashes=32, threshold=0.6,
            method="greedy", estimator="set", sparse_cutoff=4,
        ).fit(two_family_records)
        assert run.mode == "dense"

    def test_default_cutoff_exported(self):
        assert MrMCMinH().sparse_cutoff == SPARSE_AUTO_CUTOFF
        assert MrMCMinH().sparse == "auto"

    def test_engine_mode_with_wire_bits(self, two_family_records):
        run = MrMCMinH(
            kmer_size=5, num_hashes=32, threshold=0.6,
            method="greedy", estimator="positional",
            wire_bits=8, sparse="engine",
        ).fit(two_family_records)
        assert run.mode == "engine"
        assert run.assignment.num_sequences == len(two_family_records)


class TestServiceIntegration:
    def test_engine_spec_routes_through_service(self, two_family_records):
        from repro.mapreduce.service import ClusterJobSpec, JobService

        spec = ClusterJobSpec(
            records=tuple(two_family_records),
            kmer_size=5, num_hashes=32, threshold=0.6,
            method="hierarchical", linkage="single", sparse="engine",
        )
        svc = JobService(num_slots=1)
        svc.start()
        try:
            ticket = svc.submit("t0", spec)
            run = ticket.result(timeout=60)
        finally:
            svc.shutdown()
        assert run.mode == "engine"
        expected = MrMCMinH(
            kmer_size=5, num_hashes=32, threshold=0.6,
            method="hierarchical", linkage="single", sparse=True,
        ).fit(two_family_records)
        assert run.assignment.to_tsv() == expected.assignment.to_tsv()

    def test_degraded_engine_spec_stays_on_engine(self, two_family_records):
        from repro.mapreduce.service import ClusterJobSpec
        from repro.mapreduce.runner import SerialRunner

        spec = ClusterJobSpec(
            records=tuple(two_family_records),
            kmer_size=5, num_hashes=32, threshold=0.6,
            method="hierarchical", linkage="single", sparse="engine",
        )
        run = spec.execute(SerialRunner(), degraded=True)
        assert run.mode == "engine"
