"""Tests for the Table I/II/IV sample factories."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.datasets.environmental import (
    SOGIN_SAMPLES,
    generate_environmental_sample,
    spec_by_sid,
)
from repro.datasets.huse import HuseDatasetSpec, generate_huse_dataset
from repro.datasets.whole_metagenome import (
    WHOLE_METAGENOME_SPECS,
    adjust_gc,
    build_genomes,
    generate_whole_metagenome_sample,
)
from repro.datasets.whole_metagenome import spec_by_sid as wm_spec_by_sid
from repro.seq.alphabet import gc_content


class TestSpecTables:
    def test_table1_read_counts(self):
        by_sid = {s.sid: s.num_reads for s in SOGIN_SAMPLES}
        # Spot-check against Table I.
        assert by_sid["53R"] == 11218
        assert by_sid["FS396"] == 73657
        assert len(SOGIN_SAMPLES) == 8

    def test_table2_inventory(self):
        sids = [s.sid for s in WHOLE_METAGENOME_SPECS]
        assert sids == [f"S{i}" for i in range(1, 15)] + ["R1"]
        s12 = wm_spec_by_sid("S12")
        assert len(s12.species) == 6
        assert s12.num_reads == 99994
        assert not wm_spec_by_sid("R1").has_truth

    def test_table2_gc_values(self):
        s5 = wm_spec_by_sid("S5")
        assert s5.species[0].gc == 0.35  # Bacillus anthracis
        assert (s5.species[0].ratio, s5.species[1].ratio) == (1, 2)

    def test_unknown_sid(self):
        with pytest.raises(DatasetError):
            spec_by_sid("nope")
        with pytest.raises(DatasetError):
            wm_spec_by_sid("S99")


class TestAdjustGc:
    def test_moves_toward_target(self):
        g = "AT" * 5000
        up = adjust_gc(g, 0.5, np.random.default_rng(0))
        assert abs(gc_content(up) - 0.5) < 0.05

    def test_downward(self):
        g = "GC" * 5000
        down = adjust_gc(g, 0.4, np.random.default_rng(0))
        assert abs(gc_content(down) - 0.4) < 0.05

    def test_noop_when_matched(self):
        g = "ACGT" * 100
        assert adjust_gc(g, 0.5, np.random.default_rng(0)) == g

    def test_validation(self):
        with pytest.raises(DatasetError):
            adjust_gc("", 0.5)
        with pytest.raises(DatasetError):
            adjust_gc("ACGT", 1.5)


class TestBuildGenomes:
    def test_gc_targets_hit(self):
        spec = wm_spec_by_sid("S5")
        genomes = build_genomes(spec, genome_length=20_000, seed=0)
        for (name, genome), sp in zip(genomes, spec.species):
            assert abs(gc_content(genome) - sp.gc) < 0.03, name

    def test_divergence_ordering(self):
        """Species-level pairs must be more alike than order-level pairs."""
        from repro.align.kmerdist import kmer_distance

        s1 = build_genomes(wm_spec_by_sid("S1"), genome_length=8000, seed=0)
        s8 = build_genomes(wm_spec_by_sid("S8"), genome_length=8000, seed=0)
        d_species = kmer_distance(s1[0][1][:4000], s1[1][1][:4000], k=8)
        d_order = kmer_distance(s8[0][1][:4000], s8[1][1][:4000], k=8)
        assert d_species < d_order

    def test_genome_too_short_rejected(self):
        with pytest.raises(DatasetError):
            build_genomes(wm_spec_by_sid("S1"), genome_length=100)


class TestWholeMetagenomeSamples:
    def test_read_count_and_labels(self):
        reads = generate_whole_metagenome_sample("S9", num_reads=100, genome_length=4000)
        assert len(reads) == 100
        assert {r.label for r in reads} == {
            "Gluconobacter oxydans",
            "Granulobacter bethesdensis",
            "Nitrobacter hamburgensis",
        }

    def test_abundance_ratio(self):
        reads = generate_whole_metagenome_sample("S9", num_reads=200, genome_length=4000)
        counts = {}
        for r in reads:
            counts[r.label] = counts.get(r.label, 0) + 1
        # 1:1:8 — Nitrobacter dominates.
        assert counts["Nitrobacter hamburgensis"] > 100

    def test_deterministic(self):
        a = generate_whole_metagenome_sample("S1", num_reads=50, genome_length=3000, seed=4)
        b = generate_whole_metagenome_sample("S1", num_reads=50, genome_length=3000, seed=4)
        assert [(r.read_id, r.sequence) for r in a] == [(r.read_id, r.sequence) for r in b]

    def test_accepts_spec_object(self):
        reads = generate_whole_metagenome_sample(
            wm_spec_by_sid("S13"), num_reads=40, genome_length=3000
        )
        assert len(reads) == 40


class TestEnvironmentalSamples:
    def test_read_count_and_otus(self):
        reads = generate_environmental_sample("55R", num_reads=300, seed=0)
        assert len(reads) <= 300  # empty post-error reads may drop
        assert len(reads) > 280
        otus = {r.label for r in reads}
        assert 10 < len(otus) < 60  # ~0.12 OTUs per read

    def test_rare_biosphere_abundance(self):
        reads = generate_environmental_sample("53R", num_reads=500, seed=1)
        counts = {}
        for r in reads:
            counts[r.label] = counts.get(r.label, 0) + 1
        sizes = sorted(counts.values(), reverse=True)
        # Heavy head, long tail.
        assert sizes[0] > 5 * sizes[len(sizes) // 2]

    def test_mean_length(self):
        reads = generate_environmental_sample("137", num_reads=200, seed=0)
        mean_len = np.mean([len(r) for r in reads])
        assert 50 < mean_len < 75  # Table I: ~60 bp average

    def test_validation(self):
        with pytest.raises(DatasetError):
            generate_environmental_sample("53R", num_reads=0)


class TestHuseDataset:
    def test_reference_count(self):
        reads = generate_huse_dataset(num_reads=430, seed=0)
        assert len({r.label for r in reads}) == 43

    def test_error_limits_ordered(self):
        """Reads at the 3% limit are closer to their reference than at 5%."""
        from repro.align.banded import banded_identity

        def mean_identity(limit):
            spec = HuseDatasetSpec(error_limit=limit)
            reads = generate_huse_dataset(spec, num_reads=86, seed=0)
            by_ref = {}
            for r in reads:
                by_ref.setdefault(r.label, []).append(r.sequence)
            idents = []
            for seqs in by_ref.values():
                if len(seqs) >= 2:
                    idents.append(banded_identity(seqs[0], seqs[1], band=10))
            return np.mean(idents)

        assert mean_identity(0.03) > mean_identity(0.05)

    def test_read_length(self):
        spec = HuseDatasetSpec()
        reads = generate_huse_dataset(spec, num_reads=86, seed=0)
        assert all(len(r) <= spec.read_length for r in reads)

    def test_validation(self):
        with pytest.raises(DatasetError):
            HuseDatasetSpec(num_references=1)
        with pytest.raises(DatasetError):
            HuseDatasetSpec(error_limit=0.9)
        with pytest.raises(DatasetError):
            generate_huse_dataset(num_reads=10)  # < 43 references
