"""Tests for the stats/beta CLI commands and the --rescue option."""

import pytest

from repro.cli import main
from repro.datasets import generate_environmental_sample
from repro.seq.fasta import write_fasta


@pytest.fixture
def env_fasta(tmp_path):
    reads = generate_environmental_sample("53R", num_reads=60, seed=4)
    path = tmp_path / "env.fa"
    write_fasta(reads, path)
    return str(path)


@pytest.fixture
def env_fasta2(tmp_path):
    reads = generate_environmental_sample("137", num_reads=60, seed=4)
    path = tmp_path / "env2.fa"
    write_fasta(reads, path)
    return str(path)


class TestStatsCommand:
    def test_report(self, env_fasta, capsys):
        assert main(["stats", env_fasta]) == 0
        out = capsys.readouterr().out
        assert "60 sequences" in out
        assert "N50" in out
        assert "length histogram" in out


class TestBetaCommand:
    def test_matrix(self, env_fasta, env_fasta2, capsys):
        code = main(
            ["beta", env_fasta, env_fasta2, "--hashes", "32", "--metric", "jaccard"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Beta diversity (jaccard)" in out
        assert "env.fa" in out and "env2.fa" in out


class TestRescueOption:
    def test_rescue_reduces_clusters(self, env_fasta, tmp_path, capsys):
        base_out = tmp_path / "base.tsv"
        rescued_out = tmp_path / "rescued.tsv"
        main(
            ["cluster", env_fasta, "--kmer", "15", "--hashes", "50",
             "--threshold", "0.95", "--output", str(base_out)]
        )
        main(
            ["cluster", env_fasta, "--kmer", "15", "--hashes", "50",
             "--threshold", "0.95", "--rescue", "0.5", "--output", str(rescued_out)]
        )

        def count_clusters(path):
            labels = {line.split("\t")[1] for line in path.read_text().splitlines()}
            return len(labels)

        assert count_clusters(rescued_out) <= count_clusters(base_out)
