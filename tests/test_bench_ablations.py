"""Micro-scale tests of the ablation drivers (full-scale runs live under
benchmarks/)."""

import pytest

from repro.bench.ablations import (
    run_estimator_ablation,
    run_kmer_ablation,
    run_linkage_ablation,
    run_num_hashes_ablation,
)
from repro.bench.harness import ExperimentScale


@pytest.fixture(scope="module")
def tiny_scale():
    return ExperimentScale(
        num_reads=60, genome_length=4000, min_cluster_size=2,
        max_pairs_per_cluster=10,
    )


class TestEstimatorAblation:
    def test_rows_and_table(self, tiny_scale):
        table, rows = run_estimator_ablation(tiny_scale, num_pairs=50)
        assert {r.setting for r in rows} == {"set", "positional"}
        for r in rows:
            assert r.estimator_rmse is not None
            assert 0.0 <= r.estimator_rmse <= 1.0
            assert r.num_clusters >= 1
        assert "Estimator" in table.render()


class TestNumHashesAblation:
    def test_sweep(self, tiny_scale):
        table, rows = run_num_hashes_ablation(tiny_scale, hash_counts=(8, 32))
        assert [r.setting for r in rows] == ["n=8", "n=32"]
        for r in rows:
            assert r.w_acc is not None


class TestKmerAblation:
    def test_sweep(self, tiny_scale):
        table, rows = run_kmer_ablation(tiny_scale, kmer_sizes=(4, 6))
        assert [r.setting for r in rows] == ["k=4", "k=6"]
        assert all(r.num_clusters >= 1 for r in rows)


class TestLinkageAblation:
    def test_all_linkages(self, tiny_scale):
        table, rows = run_linkage_ablation(tiny_scale)
        assert [r.setting for r in rows] == ["single", "average", "complete"]
        counts = {r.setting: r.num_clusters for r in rows}
        assert counts["single"] <= counts["complete"]
