"""Property-based tests for the Pig layer: parser robustness and engine
semantics on generated relations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PigParseError
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.pig import PigEngine, parse_script
from repro.pig.parser import substitute_params

names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True)


class TestParserProperties:
    @given(names, names, names)
    @settings(max_examples=50, deadline=None)
    def test_foreach_projection_roundtrip(self, alias, source, field):
        stmts = parse_script(f"{alias} = FOREACH {source} GENERATE {field};")
        assert stmts[0].alias == alias
        assert stmts[0].source == source

    # "-" excluded: "--" inside a quoted path would still be stripped as a
    # comment (a known Pig-grammar simplification of this parser).
    @given(names, st.text(alphabet="abc/._", min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_store_roundtrip(self, alias, path):
        stmts = parse_script(f"STORE {alias} INTO '{path}';")
        assert stmts[0].path == path

    @given(st.text(max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_parser_never_crashes_unexpectedly(self, text):
        """Arbitrary input either parses or raises PigParseError — never
        anything else."""
        try:
            parse_script(text)
        except PigParseError:
            pass

    @given(st.dictionaries(names, st.integers(0, 999), max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_param_substitution_complete(self, params):
        text = " ".join(f"${k}" for k in params)
        if not params:
            return
        out = substitute_params(text, params)
        assert "$" not in out
        for value in params.values():
            assert str(value) in out


class TestEngineSemantics:
    def _engine_with(self, sequences):
        fasta = "".join(f">{rid}\n{seq}\n" for rid, seq in sequences)
        hdfs = SimulatedHDFS(2, block_size=65536)
        hdfs.put("/in.fa", fasta)
        return PigEngine(hdfs)

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 999),
                st.text(alphabet="ACGT", min_size=4, max_size=20),
            ),
            min_size=1,
            max_size=15,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_filter_partitions_relation(self, raw):
        sequences = [(f"r{i}", seq) for i, seq in raw]
        engine = self._engine_with(sequences)
        res = engine.run(
            "A = LOAD '/in.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "SHORT = FILTER A BY d < 10;\n"
            "LONG = FILTER A BY d >= 10;\n"
            "U = UNION SHORT, LONG;"
        )
        assert len(res.relations["SHORT"]) + len(res.relations["LONG"]) == len(sequences)
        assert len(res.relations["U"]) == len(sequences)

    @given(
        st.lists(
            st.text(alphabet="ACGT", min_size=4, max_size=12),
            min_size=1,
            max_size=10,
        ),
        st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_limit_bound(self, seqs, limit):
        sequences = [(f"r{i}", s) for i, s in enumerate(seqs)]
        engine = self._engine_with(sequences)
        res = engine.run(
            "A = LOAD '/in.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            f"B = LIMIT A {limit};"
        )
        assert len(res.relations["B"]) == min(limit, len(sequences))

    @given(
        st.lists(
            st.text(alphabet="ACGT", min_size=4, max_size=12),
            min_size=2,
            max_size=10,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_order_sorts(self, seqs):
        sequences = [(f"r{i}", s) for i, s in enumerate(seqs)]
        engine = self._engine_with(sequences)
        res = engine.run(
            "A = LOAD '/in.fa' USING FastaStorage AS (readid, d, seq, header);\n"
            "B = ORDER A BY d;"
        )
        lengths = [row[1] for row in res.relations["B"].rows]
        assert lengths == sorted(lengths)
