"""Chaos tests for the multiprocess runner: retries on the pool, real
worker crashes, timeout abandonment, racing speculation, single-core
degradation and unpicklable-job rejection."""

import os

import pytest

from repro.errors import MapReduceError, TaskFailedError
from repro.mapreduce.faults import Fault, FaultPlan, JobCheckpoint, RetryPolicy
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.local import MultiprocessRunner
from repro.mapreduce.runner import SerialRunner
from repro.mapreduce.types import JobConf

pytestmark = pytest.mark.chaos


def tokenize_mapper(key, value):
    for word in value.split():
        yield word, 1


def sum_reducer(key, values):
    yield key, sum(values)


WORDCOUNT = MapReduceJob(
    name="wc", mapper=tokenize_mapper, reducer=sum_reducer, combiner=sum_reducer
)

DOCS = [
    (0, "the quick brown fox"),
    (1, "the lazy dog"),
    (2, "the quick dog jumps"),
    (3, "brown dog brown fox"),
]

CONF = JobConf(num_map_tasks=4, num_reduce_tasks=2)


def clean_output():
    return SerialRunner().run(WORDCOUNT, DOCS, CONF).output


class _ExitOnceMapper:
    """Kills its worker process (hard ``os._exit``) the first time a given
    task runs; subsequent attempts, seeing the flag file, run normally."""

    def __init__(self, flag_path):
        self.flag_path = str(flag_path)

    def __call__(self, key, value):
        if key == 0 and not os.path.exists(self.flag_path):
            with open(self.flag_path, "w") as fh:
                fh.write("died")
            os._exit(1)
        for word in value.split():
            yield word, 1


class TestPoolRetries:
    def test_scheduled_crash_retried_output_identical(self):
        plan = FaultPlan(
            schedule={
                ("wc", "map", 1, 1): Fault(kind="crash"),
                ("wc", "reduce", 1, 1): Fault(kind="crash"),
            }
        )
        runner = MultiprocessRunner(num_workers=2, trace=True)
        result = runner.run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan, retry=RetryPolicy(max_attempts=3)
        )
        assert result.output == clean_output()
        assert result.counters.get("fault", "task_retries") == 2
        assert result.trace.map_tasks[1].attempts == 2
        assert result.trace.reduce_tasks[1].attempts == 2

    def test_corruption_detected_across_process_boundary(self):
        plan = FaultPlan(schedule={("wc", "map", 2, 1): Fault(kind="corrupt")})
        runner = MultiprocessRunner(num_workers=2, trace=True)
        result = runner.run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan, retry=RetryPolicy(max_attempts=2)
        )
        assert result.output == clean_output()
        assert "checksum mismatch" in result.trace.map_tasks[2].failures[0]

    def test_exhausted_attempts_raise(self):
        plan = FaultPlan(
            schedule={("wc", "map", 0, a): Fault(kind="crash") for a in (1, 2)}
        )
        with pytest.raises(TaskFailedError, match="failed after 2 attempt"):
            MultiprocessRunner(num_workers=2).run(
                WORDCOUNT, DOCS, CONF, fault_plan=plan, retry=RetryPolicy(max_attempts=2)
            )

    def test_worker_process_crash_reclaimed_by_timeout(self, tmp_path):
        # The first attempt of map task 0 hard-kills its worker process;
        # the driver abandons the attempt at task_timeout and the retry
        # (on a respawned worker) completes the job.
        job = MapReduceJob(
            name="crashy",
            mapper=_ExitOnceMapper(tmp_path / "died.flag"),
            reducer=sum_reducer,
        )
        runner = MultiprocessRunner(num_workers=2, trace=True)
        result = runner.run(
            job,
            DOCS,
            CONF,
            retry=RetryPolicy(max_attempts=3, timeout=0.5),
        )
        assert dict(result.output) == dict(clean_output())
        assert (tmp_path / "died.flag").exists()
        task = result.trace.map_tasks[0]
        assert task.attempts >= 2
        assert any("task_timeout" in f for f in task.failures)


class TestTimeoutsAndSpeculation:
    def test_hang_abandoned_at_timeout(self):
        plan = FaultPlan(
            schedule={("wc", "map", 3, 1): Fault(kind="hang", delay=5.0)}
        )
        runner = MultiprocessRunner(num_workers=2, trace=True)
        result = runner.run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, timeout=0.1),
        )
        assert result.output == clean_output()
        task = result.trace.map_tasks[3]
        assert task.attempts == 2
        assert "task_timeout" in task.failures[0]

    def test_racing_speculative_attempt_wins(self):
        # Task 3 hangs for 1s; a concurrent backup attempt launches once
        # its runtime exceeds margin x median and finishes first.  The
        # hung original's late result is discarded exactly-once.
        plan = FaultPlan(
            schedule={("wc", "map", 3, 1): Fault(kind="hang", delay=1.0)}
        )
        runner = MultiprocessRunner(num_workers=2, trace=True)
        result = runner.run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, speculative_margin=3.0),
        )
        assert result.output == clean_output()
        task = result.trace.map_tasks[3]
        assert task.speculative_win
        assert task.attempts == 2
        # Tiny median durations make other in-flight tasks speculation
        # candidates too, so the attempt count is a lower bound.
        assert result.counters.get("fault", "speculative_attempts") >= 1
        assert result.counters.get("fault", "speculative_wins") >= 1


class TestDegradationAndRejection:
    def test_unpicklable_job_rejected_up_front(self):
        job = MapReduceJob(
            name="lambda-job", mapper=lambda k, v: [(k, v)], reducer=sum_reducer
        )
        with pytest.raises(MapReduceError, match="not picklable"):
            MultiprocessRunner(num_workers=2).run(job, DOCS, CONF)

    def test_unpicklable_job_runs_inline_on_single_worker(self):
        job = MapReduceJob(
            name="lambda-job",
            mapper=lambda k, v: [(w, 1) for w in v.split()],
            reducer=sum_reducer,
        )
        result = MultiprocessRunner(num_workers=1).run(job, DOCS, CONF)
        assert dict(result.output) == dict(clean_output())

    def test_single_worker_inline_faults(self):
        plan = FaultPlan(
            schedule={
                ("wc", "map", 0, 1): Fault(kind="crash"),
                ("wc", "map", 2, 1): Fault(kind="corrupt"),
                ("wc", "reduce", 0, 1): Fault(kind="hang", delay=5.0),
            }
        )
        runner = MultiprocessRunner(num_workers=1, trace=True)
        result = runner.run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, timeout=0.05),
        )
        assert result.output == clean_output()
        assert result.trace.map_tasks[0].attempts == 2
        assert result.trace.map_tasks[2].attempts == 2
        assert result.trace.reduce_tasks[0].attempts == 2
        assert result.counters.get("fault", "task_retries") == 3

    def test_checkpoint_recovery_on_pool(self, tmp_path):
        ckpt = JobCheckpoint(tmp_path)
        runner = MultiprocessRunner(num_workers=2, trace=True, checkpoint=ckpt)
        first = runner.run(WORDCOUNT, DOCS, CONF)
        assert len(ckpt.task_ids()) == 6
        second = runner.run(WORDCOUNT, DOCS, CONF)
        assert second.output == first.output
        assert second.counters.get("fault", "tasks_recovered_from_checkpoint") == 6
        assert all(t.recovered for t in second.trace.map_tasks)

    def test_serial_and_multiprocess_agree_under_faults(self):
        plan = FaultPlan(seed=11, mapper_crash_rate=0.4, max_faulted_attempts=2)
        policy = RetryPolicy(max_attempts=3)
        serial = SerialRunner().run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan, retry=policy
        )
        parallel = MultiprocessRunner(num_workers=2).run(
            WORDCOUNT, DOCS, CONF, fault_plan=plan, retry=policy
        )
        assert serial.output == parallel.output == clean_output()
