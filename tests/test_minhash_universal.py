"""Tests for the universal hash family and prime utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.minhash.universal import (
    MAX_UNIVERSE,
    UniversalHashFamily,
    is_prime,
    next_prime,
)


class TestPrimes:
    def test_small_primes(self):
        primes = [n for n in range(2, 60) if is_prime(n)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]

    def test_non_primes(self):
        for n in (0, 1, 4, 100, 1023, 1025):
            assert not is_prime(n)

    def test_large_prime(self):
        assert is_prime(2**31 - 1)  # Mersenne prime
        assert not is_prime(2**32 + 1)  # 641 * 6700417

    def test_next_prime(self):
        assert next_prime(1024) == 1031
        assert next_prime(1) == 2
        assert next_prime(2) == 3

    def test_next_prime_strictly_greater(self):
        assert next_prime(7) == 11

    @given(st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_next_prime_property(self, n):
        p = next_prime(n)
        assert p > n
        assert is_prime(p)
        # No prime strictly between n and p (check a window).
        for q in range(n + 1, p):
            assert not is_prime(q)


class TestFamilyConstruction:
    def test_defaults(self):
        fam = UniversalHashFamily(num_hashes=10, universe_size=1024, seed=0)
        assert fam.prime == 1031
        assert fam.a.shape == (10,)
        assert np.all(fam.a >= 1) and np.all(fam.a < fam.prime)
        assert np.all(fam.b >= 0) and np.all(fam.b < fam.prime)

    def test_deterministic(self):
        f1 = UniversalHashFamily(5, 1024, seed=3)
        f2 = UniversalHashFamily(5, 1024, seed=3)
        assert np.array_equal(f1.a, f2.a)
        assert np.array_equal(f1.b, f2.b)

    def test_seed_sensitivity(self):
        f1 = UniversalHashFamily(5, 1024, seed=1)
        f2 = UniversalHashFamily(5, 1024, seed=2)
        assert not np.array_equal(f1.a, f2.a)

    def test_explicit_prime_validated(self):
        with pytest.raises(SketchError, match="not prime"):
            UniversalHashFamily(5, 1024, prime=1033 + 1)
        with pytest.raises(SketchError, match="must exceed"):
            UniversalHashFamily(5, 1024, prime=1021)

    def test_bad_params(self):
        with pytest.raises(SketchError):
            UniversalHashFamily(0, 1024)
        with pytest.raises(SketchError):
            UniversalHashFamily(5, 1)
        with pytest.raises(SketchError):
            UniversalHashFamily(5, MAX_UNIVERSE * 4)


class TestHashing:
    def test_range(self):
        fam = UniversalHashFamily(20, 4**5, seed=0)
        items = np.arange(0, 4**5, 7, dtype=np.int64)
        values = fam.hash_values(items)
        assert values.shape == (20, items.size)
        assert values.min() >= 0
        assert values.max() < 4**5

    def test_rejects_out_of_universe(self):
        fam = UniversalHashFamily(5, 1024)
        with pytest.raises(SketchError, match="must lie in"):
            fam.hash_values(np.array([1024]))
        with pytest.raises(SketchError):
            fam.hash_values(np.array([-1]))

    def test_rejects_2d(self):
        fam = UniversalHashFamily(5, 1024)
        with pytest.raises(SketchError, match="1-D"):
            fam.hash_values(np.zeros((2, 2), dtype=np.int64))

    def test_min_hash_is_min(self):
        fam = UniversalHashFamily(8, 1024, seed=1)
        items = np.array([5, 99, 710], dtype=np.int64)
        assert np.array_equal(fam.min_hash(items), fam.hash_values(items).min(axis=1))

    def test_min_hash_empty_rejected(self):
        fam = UniversalHashFamily(8, 1024)
        with pytest.raises(SketchError, match="empty"):
            fam.min_hash(np.array([], dtype=np.int64))

    def test_no_int64_overflow_at_max_universe(self):
        fam = UniversalHashFamily(4, MAX_UNIVERSE, seed=0)
        items = np.array([MAX_UNIVERSE - 1, 0, 12345], dtype=np.int64)
        values = fam.hash_values(items)
        assert values.min() >= 0  # overflow would wrap negative

    def test_uniformity_rough(self):
        """Each hash function should spread values across the universe."""
        fam = UniversalHashFamily(1, 4**5, seed=5)
        items = np.arange(1024, dtype=np.int64)
        values = fam.hash_values(items)[0]
        assert values.std() > 100  # far from constant

    def test_collision_probability_identity(self):
        fam = UniversalHashFamily(5, 1024)
        assert fam.collision_probability(0.37) == 0.37
        with pytest.raises(SketchError):
            fam.collision_probability(1.5)


class TestMinwiseProperty:
    def test_estimator_tracks_jaccard(self):
        """Equation 3: matching-minima fraction approximates Jaccard."""
        rng = np.random.default_rng(0)
        universe = 4**6
        a = np.unique(rng.integers(0, universe, size=300))
        # b shares roughly half of a.
        keep = a[: len(a) // 2]
        extra = np.unique(rng.integers(0, universe, size=150))
        b = np.unique(np.concatenate([keep, extra]))
        inter = np.intersect1d(a, b).size
        union = np.union1d(a, b).size
        true_j = inter / union

        fam = UniversalHashFamily(400, universe, seed=7)
        est = float(np.mean(fam.min_hash(a) == fam.min_hash(b)))
        assert abs(est - true_j) < 0.08
