"""Tests for the multi-job scheduler, beta diversity, and chimeras."""

import numpy as np
import pytest

from repro.errors import DatasetError, EvaluationError, SimulationError
from repro.cluster.assignments import ClusterAssignment
from repro.datasets.chimera import inject_chimeras, is_chimera, make_chimera
from repro.eval.beta import (
    beta_diversity_matrix,
    bray_curtis,
    jaccard_distance,
    morisita_horn,
    otu_table,
)
from repro.mapreduce.scheduler import (
    ScheduledJob,
    WorkloadJob,
    job_from_trace,
    mean_latency,
    simulate_schedule,
)
from repro.mapreduce.types import JobTrace, TaskTrace
from repro.seq.records import SequenceRecord


class TestScheduler:
    def test_single_job(self):
        jobs = [WorkloadJob("a", arrival=0.0, work=100.0, max_parallelism=10)]
        out = simulate_schedule(jobs, capacity=10.0)
        assert out[0].finish == pytest.approx(10.0)
        assert out[0].start == 0.0

    def test_parallelism_cap(self):
        jobs = [WorkloadJob("a", arrival=0.0, work=100.0, max_parallelism=2)]
        out = simulate_schedule(jobs, capacity=100.0)
        assert out[0].finish == pytest.approx(50.0)

    def test_fifo_serialises(self):
        jobs = [
            WorkloadJob("long", 0.0, work=1000.0),
            WorkloadJob("short", 1.0, work=10.0),
        ]
        out = {o.name: o for o in simulate_schedule(jobs, 10.0, policy="fifo")}
        assert out["long"].finish == pytest.approx(100.0)
        assert out["short"].finish == pytest.approx(101.0)

    def test_fair_rescues_short_job(self):
        jobs = [
            WorkloadJob("long", 0.0, work=1000.0),
            WorkloadJob("short", 1.0, work=10.0),
        ]
        fifo = {o.name: o for o in simulate_schedule(jobs, 10.0, policy="fifo")}
        fair = {o.name: o for o in simulate_schedule(jobs, 10.0, policy="fair")}
        assert fair["short"].finish < fifo["short"].finish / 10
        # Work conservation: the last completion matches.
        assert max(o.finish for o in fifo.values()) == pytest.approx(
            max(o.finish for o in fair.values())
        )

    def test_fair_equal_split(self):
        jobs = [WorkloadJob("a", 0.0, 50.0), WorkloadJob("b", 0.0, 50.0)]
        out = simulate_schedule(jobs, 10.0, policy="fair")
        # Each gets 5 slots -> both finish at 10.
        assert all(o.finish == pytest.approx(10.0) for o in out)

    def test_fair_water_filling_respects_caps(self):
        jobs = [
            WorkloadJob("capped", 0.0, work=10.0, max_parallelism=1.0),
            WorkloadJob("wide", 0.0, work=90.0, max_parallelism=100.0),
        ]
        out = {o.name: o for o in simulate_schedule(jobs, 10.0, policy="fair")}
        # capped runs at rate 1 -> finishes at 10; wide gets the other 9
        # slots -> finishes at 10 as well.
        assert out["capped"].finish == pytest.approx(10.0)
        assert out["wide"].finish == pytest.approx(10.0)

    def test_idle_gap_between_arrivals(self):
        jobs = [
            WorkloadJob("a", 0.0, work=10.0),
            WorkloadJob("b", 100.0, work=10.0),
        ]
        out = {o.name: o for o in simulate_schedule(jobs, 10.0)}
        assert out["b"].start == pytest.approx(100.0)

    def test_mean_latency(self):
        outcomes = [
            ScheduledJob("a", arrival=0.0, start=0.0, finish=4.0),
            ScheduledJob("b", arrival=2.0, start=2.0, finish=4.0),
        ]
        assert mean_latency(outcomes) == pytest.approx(3.0)

    def test_job_from_trace(self):
        trace = JobTrace(job_name="j")
        trace.map_tasks.append(
            TaskTrace(task_id="m", kind="map", records_in=1, cpu_seconds=2.0)
        )
        trace.reduce_tasks.append(
            TaskTrace(task_id="r", kind="reduce", records_in=1, cpu_seconds=1.0)
        )
        job = job_from_trace(trace)
        assert job.max_parallelism == 2.0
        assert job.work > 3.0  # durations include launch overhead

    def test_validation(self):
        with pytest.raises(SimulationError):
            simulate_schedule([], 10.0)
        with pytest.raises(SimulationError):
            simulate_schedule([WorkloadJob("a", 0, 1)], 0.0)
        with pytest.raises(SimulationError):
            simulate_schedule([WorkloadJob("a", 0, 1)], 1.0, policy="lifo")
        with pytest.raises(SimulationError):
            simulate_schedule(
                [WorkloadJob("a", 0, 1), WorkloadJob("a", 0, 1)], 1.0
            )
        with pytest.raises(SimulationError):
            WorkloadJob("a", 0.0, work=0.0)


class TestBetaDiversity:
    def test_identical_samples(self):
        a = {0: 10, 1: 5}
        assert bray_curtis(a, dict(a)) == pytest.approx(0.0)
        assert jaccard_distance(a, dict(a)) == pytest.approx(0.0)
        assert morisita_horn(a, dict(a)) == pytest.approx(1.0)

    def test_disjoint_samples(self):
        a, b = {0: 10}, {1: 10}
        assert bray_curtis(a, b) == pytest.approx(1.0)
        assert jaccard_distance(a, b) == pytest.approx(1.0)
        assert morisita_horn(a, b) == pytest.approx(0.0)

    def test_bray_curtis_abundance_sensitivity(self):
        a = {0: 100, 1: 1}
        close = {0: 90, 1: 11}
        far = {0: 10, 1: 91}
        assert bray_curtis(a, close) < bray_curtis(a, far)

    def test_jaccard_ignores_abundance(self):
        a = {0: 100, 1: 1}
        b = {0: 1, 1: 100}
        assert jaccard_distance(a, b) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            bray_curtis({}, {0: 1})

    def test_matrix(self):
        samples = {"s1": {0: 5, 1: 5}, "s2": {0: 5, 1: 5}, "s3": {2: 10}}
        ids, m = beta_diversity_matrix(samples)
        assert ids == ["s1", "s2", "s3"]
        assert m[0, 1] == pytest.approx(0.0)
        assert m[0, 2] == pytest.approx(1.0)
        assert np.allclose(m, m.T)

    def test_matrix_validation(self):
        with pytest.raises(EvaluationError):
            beta_diversity_matrix({"only": {0: 1}})
        with pytest.raises(EvaluationError):
            beta_diversity_matrix({"a": {0: 1}, "b": {0: 1}}, metric="bogus")

    def test_otu_table(self):
        assignment = ClusterAssignment({"r1": 0, "r2": 0, "r3": 1, "r4": 1})
        sample_of = {"r1": "A", "r2": "B", "r3": "A", "r4": "A"}
        table = otu_table(assignment, sample_of)
        assert table == {"A": {0: 1, 1: 2}, "B": {0: 1}}

    def test_otu_table_missing_sample(self):
        assignment = ClusterAssignment({"r1": 0})
        with pytest.raises(EvaluationError):
            otu_table(assignment, {})


class TestChimeras:
    def _parents(self):
        return [
            SequenceRecord("a", "A" * 60, label="X"),
            SequenceRecord("b", "T" * 60, label="Y"),
        ]

    def test_make_chimera_structure(self):
        a, b = self._parents()
        chim = make_chimera(a, b, breakpoint_fraction=0.5, read_id="c1")
        assert chim.sequence.startswith("A" * 30)
        assert chim.sequence.endswith("T" * 30)
        assert is_chimera(chim)
        assert "X+Y" in chim.label

    def test_breakpoint_validation(self):
        a, b = self._parents()
        with pytest.raises(DatasetError):
            make_chimera(a, b, breakpoint_fraction=0.0, read_id="c")

    def test_injection_rate(self):
        reads = [
            SequenceRecord(f"r{i}", "ACGT" * 20, label=f"L{i % 3}") for i in range(100)
        ]
        out = inject_chimeras(reads, rate=0.1, rng=0)
        assert len(out) == 100
        n_chim = sum(1 for r in out if is_chimera(r))
        assert n_chim == 10

    def test_zero_rate_identity(self):
        reads = self._parents()
        assert inject_chimeras(reads, rate=0.0, rng=0) == reads

    def test_chimeras_prefer_cross_template(self):
        reads = [
            SequenceRecord(f"x{i}", "A" * 50, label="X") for i in range(20)
        ] + [SequenceRecord(f"y{i}", "T" * 50, label="Y") for i in range(20)]
        out = inject_chimeras(reads, rate=0.5, rng=1)
        cross = [
            r for r in out if is_chimera(r) and "X+Y" in r.label or "Y+X" in r.label
        ]
        assert len(cross) >= 10

    def test_validation(self):
        with pytest.raises(DatasetError):
            inject_chimeras(self._parents(), rate=1.5)
        with pytest.raises(DatasetError):
            inject_chimeras(self._parents()[:1], rate=0.5)

    def test_chimeras_inflate_otu_counts(self):
        """The biological effect: chimeras create extra clusters."""
        from repro.cluster.pipeline import MrMCMinH
        from repro.datasets import generate_environmental_sample

        reads = generate_environmental_sample("53R", num_reads=120, seed=3)
        chimeric = inject_chimeras(reads, rate=0.15, rng=3)
        model = lambda: MrMCMinH(
            kmer_size=15, num_hashes=50, threshold=0.95, seed=3
        )
        clean_clusters = model().fit(reads).assignment.num_clusters
        chim_clusters = model().fit(chimeric).assignment.num_clusters
        assert chim_clusters >= clean_clusters
