"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1 << 30, size=20)
        b = ensure_rng(2).integers(0, 1 << 30, size=20)
        assert not np.array_equal(a, b)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(7, "x", 1) == derive_seed(7, "x", 1)

    def test_label_sensitivity(self):
        assert derive_seed(7, "x") != derive_seed(7, "y")

    def test_base_sensitivity(self):
        assert derive_seed(7, "x") != derive_seed(8, "x")

    def test_order_sensitivity(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")

    def test_63_bit_range(self):
        for i in range(50):
            s = derive_seed(i, "label")
            assert 0 <= s < (1 << 63)

    def test_label_concatenation_is_not_ambiguous(self):
        # ("ab", "c") must differ from ("a", "bc") — separator matters.
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_are_independent(self):
        rngs = spawn_rngs(0, 3, "test")
        draws = [tuple(r.integers(0, 1 << 30, size=5)) for r in rngs]
        assert len(set(draws)) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_reproducible(self):
        a = [r.integers(0, 100) for r in spawn_rngs(9, 4)]
        b = [r.integers(0, 100) for r in spawn_rngs(9, 4)]
        assert a == b
