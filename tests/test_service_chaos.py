"""Chaos soak for the multi-tenant job service.

Three tenants submit deterministic Map-Reduce jobs while the shared
runner injects seeded crashes, hangs, and slow-node latency.  The
acceptance bit mirrors the engine-level chaos suite: every *accepted*
job must finish with output byte-identical to a fault-free run, or be
deterministically rejected with a typed error — and drain must always
terminate.

The seed comes from ``CHAOS_SEED`` (default 0) so CI sweeps a matrix of
seeds over the same test.  Fault draws are a pure function of
``(seed, job_name, kind, index, attempt)``; job names are unique per
ticket, so the per-job fault pattern is independent of which worker
thread runs it.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ServiceOverloadedError
from repro.mapreduce import (
    JobConf,
    MapReduceJob,
    RetryPolicy,
)
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.runner import SerialRunner
from repro.mapreduce.service import JobService, MapReduceSpec

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

TENANTS = ("alpha", "beta", "gamma")


def _word_mapper(key, value):
    for word in value.split():
        yield word, 1


def _sum_reducer(key, values):
    yield key, sum(values)


def count_spec(name: str, text: str) -> MapReduceSpec:
    """Deterministic word-count job: output depends only on ``text``."""
    job = MapReduceJob(name=name, mapper=_word_mapper, reducer=_sum_reducer)
    return MapReduceSpec(
        job=job,
        inputs=tuple((i, line) for i, line in enumerate(text.splitlines())),
        conf=JobConf(num_map_tasks=3, num_reduce_tasks=2),
    )


def workload() -> list[tuple[str, MapReduceSpec]]:
    """(tenant, spec) pairs; job names are unique and stable."""
    corpus = "the quick brown fox jumps over the lazy dog\n" * 4
    out = []
    for tenant in TENANTS:
        for j in range(4):
            out.append((tenant, count_spec(f"{tenant}-wc{j}", corpus + tenant)))
    return out


def clean_results() -> dict[str, list]:
    """Fault-free reference output for every job in the workload."""
    runner = SerialRunner(trace=False)
    return {
        spec.job.name: sorted(spec.execute(runner).output)
        for _tenant, spec in workload()
    }


def chaos_plan() -> FaultPlan:
    return FaultPlan(
        seed=CHAOS_SEED,
        mapper_crash_rate=0.25,
        reducer_crash_rate=0.1,
        slow_node_rate=0.3,
        slow_node_delay=0.002,
        max_faulted_attempts=2,
    )


class TestServiceChaosSoak:
    def test_accepted_jobs_survive_chaos_byte_identical(self):
        reference = clean_results()
        runner = SerialRunner(
            trace=False,
            fault_plan=chaos_plan(),
            retry=RetryPolicy(max_attempts=3, backoff=0.0),
        )
        svc = JobService(
            num_slots=2,
            queue_depth=8,
            policy="fair",
            runner=runner,
            retry=RetryPolicy(max_attempts=2, backoff=0.001, jitter=1.0, seed=CHAOS_SEED),
        )
        tickets = [
            (svc.submit(tenant, spec), spec) for tenant, spec in workload()
        ]
        svc.start()
        slow_delays = 0
        for ticket, spec in tickets:
            result = ticket.result(timeout=60)
            assert sorted(result.output) == reference[spec.job.name], (
                f"chaos changed the answer for {spec.job.name}"
            )
            slow_delays += result.counters.get("fault", "slow_node_delays")
        assert svc.drain(timeout=30) is True, "drain must always terminate"
        health = svc.health()
        assert health["totals"]["completed"] == len(tickets)
        assert health["totals"]["queued"] == 0
        assert health["totals"]["running"] == 0
        # The chaos really happened for at least one of the sweep seeds;
        # slow-node draws at rate 0.3 over ~60 attempts fire essentially
        # always, independent of crash recovery.
        assert slow_delays > 0, "chaos plan injected no slow-node faults"
        svc.shutdown()

    def test_chaos_soak_is_reproducible(self):
        def one_pass():
            runner = SerialRunner(
                trace=False,
                fault_plan=chaos_plan(),
                retry=RetryPolicy(max_attempts=3, backoff=0.0),
            )
            with JobService(num_slots=2, queue_depth=8, runner=runner) as svc:
                tickets = [
                    (svc.submit(tenant, spec), spec)
                    for tenant, spec in workload()
                ]
                outputs = {
                    spec.job.name: sorted(t.result(timeout=60).output)
                    for t, spec in tickets
                }
            return outputs

        assert one_pass() == one_pass()

    def test_overload_shed_set_is_deterministic(self):
        """Pre-start bursts shed on queue occupancy alone: same burst,
        same shed set, chaos or not."""

        def burst():
            runner = SerialRunner(
                trace=False,
                fault_plan=chaos_plan(),
                retry=RetryPolicy(max_attempts=3, backoff=0.0),
            )
            svc = JobService(num_slots=2, queue_depth=2, runner=runner)
            accepted, shed = [], []
            for tenant, spec in workload():  # 4 jobs/tenant into depth-2 queues
                try:
                    accepted.append(svc.submit(tenant, spec).id)
                except ServiceOverloadedError:
                    shed.append(spec.job.name)
            svc.start()
            assert svc.drain(timeout=60) is True
            health = svc.health()
            svc.shutdown()
            assert health["totals"]["completed"] == len(accepted)
            return accepted, shed, health["totals"]["shed"]

        first, second = burst(), burst()
        assert first == second
        accepted, shed, shed_count = first
        assert len(accepted) == len(TENANTS) * 2  # depth 2 per tenant
        assert shed_count == len(shed) == len(TENANTS) * 2

    def test_hang_faults_under_deadline_terminate(self):
        """Hung attempts plus deadlines: every ticket reaches a terminal
        typed state and drain still terminates."""
        plan = FaultPlan(
            seed=CHAOS_SEED,
            hang_rate=0.5,
            hang_delay=0.05,
            max_faulted_attempts=2,
        )
        runner = SerialRunner(
            trace=False, fault_plan=plan, retry=RetryPolicy(max_attempts=3)
        )
        svc = JobService(num_slots=2, queue_depth=8, runner=runner)
        tickets = [
            svc.submit(tenant, spec, deadline=30.0)
            for tenant, spec in workload()[:6]
        ]
        svc.start()
        for t in tickets:
            t.event.wait(60)
            assert t.done()
            assert t.status in ("done", "expired")
        assert svc.drain(timeout=30) is True
        svc.shutdown()
