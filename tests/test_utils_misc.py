"""Tests for timing and chunking utilities."""

import pytest

from repro.utils.chunking import chunk_indices, even_splits
from repro.utils.timing import Stopwatch, format_duration


class TestStopwatch:
    def test_lap_accumulates(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        with sw.lap("a"):
            pass
        assert sw.laps["a"] >= 0
        assert set(sw.laps) == {"a"}

    def test_total_sums_laps(self):
        sw = Stopwatch()
        sw.laps["x"] = 1.5
        sw.laps["y"] = 0.5
        assert sw.total == 2.0

    def test_multiple_names(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        with sw.lap("b"):
            pass
        assert set(sw.laps) == {"a", "b"}


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(8.4) == "8.4s"

    def test_minutes(self):
        assert format_duration(265) == "4m 25s"

    def test_exact_minute(self):
        assert format_duration(60) == "1m 00s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestEvenSplits:
    def test_sum_preserved(self):
        assert sum(even_splits(10, 3)) == 10

    def test_sizes_differ_by_at_most_one(self):
        sizes = even_splits(11, 4)
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_items(self):
        sizes = even_splits(2, 5)
        assert sizes == [1, 1, 0, 0, 0]

    def test_zero_items(self):
        assert even_splits(0, 3) == [0, 0, 0]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            even_splits(5, 0)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            even_splits(-1, 2)


class TestChunkIndices:
    def test_covers_range(self):
        chunks = chunk_indices(10, 3)
        covered = [i for start, stop in chunks for i in range(start, stop)]
        assert covered == list(range(10))

    def test_contiguous(self):
        chunks = chunk_indices(7, 3)
        for (_, stop1), (start2, _) in zip(chunks, chunks[1:]):
            assert stop1 == start2

    def test_empty_chunks_when_parts_exceed_n(self):
        chunks = chunk_indices(1, 3)
        assert chunks == [(0, 1), (1, 1), (1, 1)]
