"""Tests for global alignment, including a brute-force DP cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SequenceError
from repro.align.global_align import (
    AlignmentResult,
    ScoringScheme,
    global_align,
    global_identity,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


def reference_nw_score(a, b, scheme):
    """Plain-Python Needleman-Wunsch for cross-checking."""
    n, m = len(a), len(b)
    H = [[0.0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        H[i][0] = scheme.gap * i
    for j in range(1, m + 1):
        H[0][j] = scheme.gap * j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            sub = scheme.match if a[i - 1] == b[j - 1] else scheme.mismatch
            H[i][j] = max(
                H[i - 1][j - 1] + sub, H[i - 1][j] + scheme.gap, H[i][j - 1] + scheme.gap
            )
    return H[n][m]


class TestScoringScheme:
    def test_defaults(self):
        s = ScoringScheme()
        assert s.match == 1.0 and s.mismatch == -1.0 and s.gap == -1.0

    def test_validation(self):
        with pytest.raises(SequenceError):
            ScoringScheme(gap=0.5)
        with pytest.raises(SequenceError):
            ScoringScheme(match=-1.0, mismatch=0.0)


class TestGlobalAlign:
    def test_identical(self):
        r = global_align("ACGTACGT", "ACGTACGT")
        assert r.identity == 1.0
        assert r.score == 8.0
        assert r.aligned_a == r.aligned_b == "ACGTACGT"

    def test_single_substitution(self):
        r = global_align("ACGT", "AGGT")
        assert r.matches == 3
        assert r.length == 4
        assert r.identity == 0.75

    def test_insertion(self):
        r = global_align("ACGT", "ACGGT")
        assert "-" in r.aligned_a
        assert r.matches == 4
        assert r.length == 5

    def test_totally_different(self):
        r = global_align("AAAA", "TTTT")
        assert r.identity == 0.0

    def test_empty_rejected(self):
        with pytest.raises(SequenceError):
            global_align("", "ACGT")
        with pytest.raises(SequenceError):
            global_align("ACGT", "")

    def test_case_insensitive(self):
        assert global_align("acgt", "ACGT").identity == 1.0

    def test_alignment_strings_consistent(self):
        r = global_align("ACGTAC", "AGTACC")
        assert len(r.aligned_a) == len(r.aligned_b) == r.length
        assert r.aligned_a.replace("-", "") == "ACGTAC"
        assert r.aligned_b.replace("-", "") == "AGTACC"
        matches = sum(1 for x, y in zip(r.aligned_a, r.aligned_b) if x == y and x != "-")
        assert matches == r.matches

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_score_matches_reference_dp(self, a, b):
        scheme = ScoringScheme()
        ours = global_align(a, b, scheme).score
        assert ours == pytest.approx(reference_nw_score(a, b, scheme))

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_traceback_score_consistent(self, a, b):
        """The aligned strings must re-score to the DP optimum."""
        scheme = ScoringScheme()
        r = global_align(a, b, scheme)
        rescored = 0.0
        for x, y in zip(r.aligned_a, r.aligned_b):
            if x == "-" or y == "-":
                rescored += scheme.gap
            elif x == y:
                rescored += scheme.match
            else:
                rescored += scheme.mismatch
        assert rescored == pytest.approx(r.score)

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_symmetry_and_bounds(self, a, b):
        assert global_identity(a, b) == pytest.approx(global_identity(b, a))
        assert 0.0 <= global_identity(a, b) <= 1.0

    @given(dna)
    @settings(max_examples=30, deadline=None)
    def test_self_identity(self, a):
        assert global_identity(a, a) == 1.0


class TestAlignmentResult:
    def test_identity_zero_length(self):
        r = AlignmentResult("", "", 0.0, 0, 0)
        assert r.identity == 0.0
