"""Smoke checks on the example scripts: they must compile and import only
public library API (full runs are exercised manually / in docs)."""

import ast
import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_imports_resolve(path):
    """Every repro import in an example must resolve against the installed
    package (guards examples against API drift)."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            module = __import__(node.module, fromlist=[a.name for a in node.names])
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_has_main_and_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} needs a module docstring"
    names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in names, f"{path.name} needs a main()"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship eight
