"""Edge-case tests for the banded LSH index (repro.minhash.lsh).

Covers the corners the clustering paths lean on: querying an empty
index, duplicate insertion, band/row parameter validation, and — the
property greedy clustering silently assumes — that the *set* of
candidates returned is independent of insertion order.
"""

import itertools

import numpy as np
import pytest

from repro.errors import SketchError
from repro.minhash.lsh import LshIndex, all_candidate_pairs
from repro.minhash.sketch import MinHashSketch, sketches_from_matrix

FAMILY = (8, 1 << 30, 0)


def make_sketches(values):
    values = np.asarray(values, dtype=np.int64)
    return sketches_from_matrix(
        values, [f"r{i}" for i in range(values.shape[0])], FAMILY
    )


def sk(read_id, values):
    return MinHashSketch(
        read_id=read_id, values=np.asarray(values, dtype=np.int64),
        family_key=FAMILY,
    )


class TestEmptyIndex:
    def test_query_on_empty_index_returns_no_candidates(self):
        index = LshIndex(num_hashes=8, band_size=2)
        assert index.candidates(sk("q", range(8))) == []
        assert len(index) == 0
        assert "q" not in index

    def test_all_candidate_pairs_of_nothing_is_empty(self):
        assert all_candidate_pairs([], band_size=2) == set()

    def test_get_on_empty_index_raises(self):
        index = LshIndex(num_hashes=8, band_size=2)
        with pytest.raises(SketchError, match="not in index"):
            index.get("missing")


class TestDuplicateInsert:
    def test_duplicate_read_id_rejected(self):
        index = LshIndex(num_hashes=8, band_size=2)
        index.insert(sk("a", range(8)))
        with pytest.raises(SketchError, match="already indexed"):
            index.insert(sk("a", range(8)))

    def test_failed_duplicate_does_not_double_count_candidates(self):
        # The rejected insert must not leave a second copy of the id in
        # any band table (candidates would then report it twice).
        index = LshIndex(num_hashes=8, band_size=2)
        index.insert(sk("a", range(8)))
        with pytest.raises(SketchError):
            index.insert(sk("a", range(8)))
        assert len(index) == 1
        assert index.candidates(sk("probe", range(8))) == ["a"]


class TestParameterValidation:
    @pytest.mark.parametrize("band_size", [0, -1])
    def test_band_size_must_be_positive(self, band_size):
        with pytest.raises(SketchError, match="band_size"):
            LshIndex(num_hashes=8, band_size=band_size)

    @pytest.mark.parametrize("band_size", [3, 5, 7])
    def test_band_size_must_divide_num_hashes(self, band_size):
        with pytest.raises(SketchError, match="divide"):
            LshIndex(num_hashes=8, band_size=band_size)

    def test_sketch_width_must_match_index_width(self):
        index = LshIndex(num_hashes=8, band_size=2)
        with pytest.raises(SketchError, match="width"):
            index.insert(sk("narrow", range(4)))
        with pytest.raises(SketchError, match="width"):
            index.candidates(sk("wide", range(16)))

    def test_s_curve_inputs_validated(self):
        with pytest.raises(SketchError, match="jaccard"):
            LshIndex.candidate_probability(1.5, 2, 4)
        with pytest.raises(SketchError, match=">= 1"):
            LshIndex.candidate_probability(0.5, 0, 4)
        with pytest.raises(SketchError, match=">= 1"):
            LshIndex.threshold(2, 0)


class TestInsertionOrderIndependence:
    def test_candidate_set_is_order_independent(self):
        rng = np.random.default_rng(7)
        sketches = make_sketches(rng.integers(0, 4, size=(6, 8)))
        probe = sk("probe", rng.integers(0, 4, size=8))

        reference = None
        for order in itertools.permutations(sketches):
            index = LshIndex(num_hashes=8, band_size=2)
            index.insert_all(order)
            got = set(index.candidates(probe))
            if reference is None:
                reference = got
            assert got == reference

    def test_all_candidate_pairs_order_independent(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 3, size=(7, 8))
        sketches = make_sketches(values)
        reference = all_candidate_pairs(sketches, band_size=2)
        assert reference, "degenerate fixture: no collisions at all"
        for seed in range(5):
            shuffled = list(sketches)
            np.random.default_rng(seed).shuffle(shuffled)
            assert all_candidate_pairs(shuffled, band_size=2) == reference

    def test_self_is_never_its_own_candidate(self):
        index = LshIndex(num_hashes=8, band_size=2)
        index.insert(sk("a", range(8)))
        assert index.candidates(sk("a", range(8))) == []
