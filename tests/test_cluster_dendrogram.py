"""Tests for the dendrogram structure."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.cluster.dendrogram import Dendrogram, MergeStep


class TestDendrogramValidation:
    def test_empty_ok(self):
        d = Dendrogram(3)
        assert len(d) == 0
        assert not d.is_complete

    def test_too_many_merges(self):
        with pytest.raises(ClusteringError, match="exceed"):
            Dendrogram(2, [MergeStep(0, 1, 0.9, 2), MergeStep(2, 0, 0.8, 3)])

    def test_reuse_rejected(self):
        d = Dendrogram(3, [MergeStep(0, 1, 0.9, 2)])
        with pytest.raises(ClusteringError, match="reuses"):
            d.append(MergeStep(0, 2, 0.5, 3))

    def test_future_id_rejected(self):
        with pytest.raises(ClusteringError, match="invalid cluster id"):
            Dendrogram(3, [MergeStep(0, 5, 0.9, 2)])

    def test_append_rolls_back_on_error(self):
        d = Dendrogram(3, [MergeStep(0, 1, 0.9, 2)])
        with pytest.raises(ClusteringError):
            d.append(MergeStep(1, 2, 0.5, 3))
        assert len(d) == 1

    def test_zero_leaves_rejected(self):
        with pytest.raises(ClusteringError):
            Dendrogram(0)


class TestCut:
    def test_no_merges(self):
        assert Dendrogram(3).cut(0.5) == [0, 1, 2]

    def test_full_merge_chain(self):
        d = Dendrogram(3, [MergeStep(0, 1, 0.9, 2), MergeStep(3, 2, 0.7, 3)])
        assert d.cut(0.0) == [0, 0, 0]
        assert d.cut(0.8) == [0, 0, 1]
        assert d.cut(0.95) == [0, 1, 2]

    def test_threshold_inclusive(self):
        d = Dendrogram(2, [MergeStep(0, 1, 0.9, 2)])
        assert d.cut(0.9) == [0, 0]

    def test_labels_dense(self):
        d = Dendrogram(4, [MergeStep(1, 2, 0.9, 2)])
        labels = d.cut(0.5)
        assert sorted(set(labels)) == list(range(len(set(labels))))


class TestScipyExport:
    def test_roundtrip_against_scipy(self):
        from scipy.cluster.hierarchy import fcluster

        d = Dendrogram(
            4,
            [
                MergeStep(0, 1, 0.9, 2),
                MergeStep(2, 3, 0.8, 2),
                MergeStep(4, 5, 0.3, 4),
            ],
        )
        Z = d.to_scipy_linkage()
        assert Z.shape == (3, 4)
        # Cut at distance 0.5 (similarity 0.5): scipy labels must induce
        # the same partition as our cut.
        ours = d.cut(0.5)
        theirs = fcluster(Z, t=0.5, criterion="distance")
        pairs_ours = {(i, j) for i in range(4) for j in range(4) if ours[i] == ours[j]}
        pairs_theirs = {
            (i, j) for i in range(4) for j in range(4) if theirs[i] == theirs[j]
        }
        assert pairs_ours == pairs_theirs

    def test_incomplete_rejected(self):
        d = Dendrogram(3, [MergeStep(0, 1, 0.9, 2)])
        with pytest.raises(ClusteringError, match="complete"):
            d.to_scipy_linkage()

    def test_distance_conversion(self):
        d = Dendrogram(2, [MergeStep(0, 1, 0.75, 2)])
        Z = d.to_scipy_linkage()
        assert Z[0, 2] == pytest.approx(0.25)
        assert Z[0, 3] == 2
