"""Property-based tests of clustering invariants (hypothesis).

These hold for *any* input, not just the curated fixtures: threshold
monotonicity, partition sanity, estimator consistency, and equivalence
between the greedy algorithm and a reference implementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.greedy import greedy_cluster
from repro.cluster.hierarchical import agglomerative_cluster, build_dendrogram
from repro.minhash.sketch import MinHashSketch
from repro.minhash.similarity import set_similarity


@st.composite
def sketch_sets(draw, max_sketches=16, width=6):
    n = draw(st.integers(min_value=1, max_value=max_sketches))
    rows = draw(
        st.lists(
            st.lists(st.integers(0, 9), min_size=width, max_size=width),
            min_size=n,
            max_size=n,
        )
    )
    return [
        MinHashSketch(f"s{i}", np.asarray(row, dtype=np.int64), family_key=(width, 10, 0))
        for i, row in enumerate(rows)
    ]


@st.composite
def similarity_matrices(draw, max_n=12):
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    base = rng.random((n, n))
    sim = (base + base.T) / 2
    np.fill_diagonal(sim, 1.0)
    return sim


class TestGreedyProperties:
    @given(sketch_sets(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=80, deadline=None)
    def test_partition_is_total_and_dense(self, sketches, theta):
        a = greedy_cluster(sketches, theta)
        assert a.num_sequences == len(sketches)
        labels = sorted(set(a.values()))
        assert labels == list(range(len(labels)))

    @given(sketch_sets())
    @settings(max_examples=60, deadline=None)
    def test_threshold_monotonicity(self, sketches):
        counts = [
            greedy_cluster(sketches, t).num_clusters for t in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert counts == sorted(counts)

    @given(sketch_sets())
    @settings(max_examples=60, deadline=None)
    def test_members_similar_to_representative(self, sketches):
        """Every member joined its cluster because its similarity to the
        representative was >= θ; re-verify against a reference scan."""
        theta = 0.5
        a = greedy_cluster(sketches, theta, estimator="set")
        # Reference: replay Algorithm 1 naively.
        expected = {}
        unassigned = list(range(len(sketches)))
        label = 0
        while unassigned:
            rep = unassigned.pop(0)
            expected[sketches[rep].read_id] = label
            remaining = []
            for j in unassigned:
                if set_similarity(sketches[rep], sketches[j]) >= theta:
                    expected[sketches[j].read_id] = label
                else:
                    remaining.append(j)
            unassigned = remaining
            label += 1
        assert dict(a) == expected

    @given(sketch_sets(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_identical_sketches_always_together(self, sketches, theta):
        # Duplicate the first sketch under a new id: must co-cluster with
        # the original at any threshold.
        clone = MinHashSketch(
            "clone", sketches[0].values.copy(), family_key=sketches[0].family_key
        )
        a = greedy_cluster(list(sketches) + [clone], theta)
        assert a[sketches[0].read_id] == a["clone"]


class TestHierarchicalProperties:
    @given(similarity_matrices(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_partition_total(self, sim, theta):
        ids = [f"s{i}" for i in range(sim.shape[0])]
        a = agglomerative_cluster(sim, ids, theta)
        assert a.num_sequences == len(ids)

    @given(similarity_matrices())
    @settings(max_examples=40, deadline=None)
    def test_threshold_zero_one_extremes(self, sim):
        n = sim.shape[0]
        ids = [f"s{i}" for i in range(n)]
        assert agglomerative_cluster(sim, ids, 0.0).num_clusters == 1
        # At θ=1, only exact-1.0 similarities may merge.
        strict = agglomerative_cluster(sim, ids, 1.0)
        off_diag = sim[~np.eye(n, dtype=bool)]
        if n == 1 or (off_diag < 1.0).all():
            assert strict.num_clusters == n

    @given(similarity_matrices())
    @settings(max_examples=40, deadline=None)
    def test_dendrogram_sizes_consistent(self, sim):
        d = build_dendrogram(sim, linkage="average")
        total_leaves = sim.shape[0]
        for step in d.steps:
            assert 2 <= step.size <= total_leaves
        if d.steps:
            assert d.steps[-1].size <= total_leaves

    @given(similarity_matrices())
    @settings(max_examples=40, deadline=None)
    def test_single_linkage_coarser_than_complete(self, sim):
        """At any threshold, single linkage yields at most as many
        clusters as complete linkage."""
        ids = [f"s{i}" for i in range(sim.shape[0])]
        for theta in (0.3, 0.6, 0.9):
            single = agglomerative_cluster(sim, ids, theta, linkage="single")
            complete = agglomerative_cluster(sim, ids, theta, linkage="complete")
            assert single.num_clusters <= complete.num_clusters

    @given(similarity_matrices())
    @settings(max_examples=30, deadline=None)
    def test_permutation_invariance(self, sim):
        """Relabeling inputs permutes but does not change the partition."""
        n = sim.shape[0]
        rng = np.random.default_rng(0)
        perm = rng.permutation(n)
        sim_p = sim[np.ix_(perm, perm)]
        ids = [f"s{i}" for i in range(n)]
        a = agglomerative_cluster(sim, ids, 0.5)
        b = agglomerative_cluster(sim_p, [ids[i] for i in perm], 0.5)

        def partition(assignment):
            groups = {}
            for rid, lbl in assignment.items():
                groups.setdefault(lbl, set()).add(rid)
            return {frozenset(g) for g in groups.values()}

        assert partition(dict(a)) == partition(dict(b))
