"""Failure-injection tests: HDFS datanode loss and engine-level faults."""

import pytest

from repro.errors import HdfsError, MapReduceError
from repro.mapreduce.faults import DatanodeKill, FaultPlan
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import MapReduceJob, identity_reducer
from repro.mapreduce.runner import SerialRunner
from repro.mapreduce.types import JobConf


@pytest.fixture
def hdfs():
    fs = SimulatedHDFS(num_datanodes=4, block_size=16, replication=2, seed=0)
    fs.put("/data", bytes(range(64)))
    return fs


class TestDatanodeFailure:
    def test_read_survives_single_failure(self, hdfs):
        """Replication 2: any single node loss leaves every block readable."""
        for node in range(4):
            hdfs.fail_datanode(node)
            assert hdfs.get("/data") == bytes(range(64))
            hdfs.restart_datanode(node)

    def test_double_failure_may_lose_blocks(self, hdfs):
        # Kill two nodes; if some block had both replicas there, reading fails.
        meta = hdfs.stat("/data")
        target = meta.blocks[0].replicas
        for node in target:
            hdfs.fail_datanode(node)
        with pytest.raises(HdfsError, match="replicas"):
            hdfs.read_block("/data", 0)

    def test_rereplication_restores_factor(self, hdfs):
        hdfs.fail_datanode(0)
        created = hdfs.rereplicate()
        # Every block must again have `replication` live replicas.
        meta = hdfs.stat("/data")
        for block in meta.blocks:
            live = [n for n in block.replicas if n in hdfs.live_datanodes]
            assert len(live) >= hdfs.replication
        # Node 0 held replicas before, so something must have been copied.
        assert created >= 0

    def test_rereplication_after_total_loss_raises(self, hdfs):
        meta = hdfs.stat("/data")
        for node in meta.blocks[0].replicas:
            hdfs.fail_datanode(node)
        with pytest.raises(HdfsError, match="lost all replicas"):
            hdfs.rereplicate()

    def test_read_after_rereplication_and_failure(self, hdfs):
        hdfs.fail_datanode(0)
        hdfs.rereplicate()
        hdfs.fail_datanode(1)
        hdfs.rereplicate()
        assert hdfs.get("/data") == bytes(range(64))

    def test_writes_avoid_dead_nodes(self, hdfs):
        hdfs.fail_datanode(2)
        meta = hdfs.put("/new", b"x" * 48)
        for block in meta.blocks:
            assert 2 not in block.replicas

    def test_all_nodes_dead(self):
        fs = SimulatedHDFS(num_datanodes=1, replication=1)
        fs.fail_datanode(0)
        with pytest.raises(HdfsError, match="no live datanodes"):
            fs.put("/x", b"data")

    def test_invalid_node_id(self, hdfs):
        with pytest.raises(HdfsError, match="out of range"):
            hdfs.fail_datanode(99)


class TestEngineFaults:
    def test_mapper_exception_propagates_with_context(self):
        def exploding_mapper(key, value):
            if key == 3:
                raise ValueError("record 3 is poison")
            yield key, value

        job = MapReduceJob(name="j", mapper=exploding_mapper, reducer=identity_reducer)
        with pytest.raises(ValueError, match="poison"):
            SerialRunner().run(job, [(i, i) for i in range(5)])

    def test_reducer_exception_propagates(self):
        def exploding_reducer(key, values):
            raise RuntimeError("reduce failed")

        job = MapReduceJob(name="j", mapper=lambda k, v: [(k, v)], reducer=exploding_reducer)
        with pytest.raises(RuntimeError, match="reduce failed"):
            SerialRunner().run(job, [(0, 0)])

    def test_none_yielding_mapper_tolerated(self):
        """A mapper returning None (filtering everything) is legal."""
        job = MapReduceJob(name="j", mapper=lambda k, v: None, reducer=identity_reducer)
        result = SerialRunner().run(job, [(0, 0), (1, 1)])
        assert result.output == []

    def test_unsortable_keys_fall_back(self):
        """Mixed-type keys must not crash the shuffle or the output sort."""
        def mixed_mapper(key, value):
            yield (key if key % 2 else str(key)), value

        job = MapReduceJob(name="j", mapper=mixed_mapper, reducer=identity_reducer)
        result = SerialRunner().run(job, [(i, i) for i in range(6)])
        assert len(result.output) == 6


class _BlockReducer:
    """Reducer that reads its HDFS block at reduce time — so datanodes
    that die between the map and reduce phases matter to it."""

    def __init__(self, hdfs, path):
        self.hdfs = hdfs
        self.path = path

    def __call__(self, key, values):
        yield key, len(self.hdfs.read_block(self.path, key))


class TestDatanodeDiesMidJob:
    """A datanode killed between map and reduce (the "map_end" barrier)."""

    def make_job(self, hdfs):
        hdfs.put("/blocks", bytes(range(64)))
        job = MapReduceJob(
            name="blockread",
            mapper=lambda key, value: [(key, value)],
            reducer=_BlockReducer(hdfs, "/blocks"),
        )
        num_blocks = hdfs.stat("/blocks").num_blocks
        inputs = [(i, i) for i in range(num_blocks)]
        return job, inputs

    def test_job_completes_via_rereplication(self):
        fs = SimulatedHDFS(num_datanodes=4, block_size=16, replication=2, seed=0)
        job, inputs = self.make_job(fs)
        # Kill BOTH nodes holding block 0's replicas — only the
        # re-replication after the first kill keeps the block readable.
        doomed = fs.stat("/blocks").blocks[0].replicas
        plan = FaultPlan(
            datanode_kills=[DatanodeKill("map_end", n) for n in doomed]
        ).bind_hdfs(fs)
        result = SerialRunner().run(
            job, inputs, JobConf(num_map_tasks=2, num_reduce_tasks=2),
            fault_plan=plan,
        )
        assert dict(result.output) == {i: 16 for i, _ in inputs}
        assert result.counters.get("fault", "datanodes_killed") == 2
        assert result.counters.get("fault", "replicas_recreated") > 0
        assert sorted(fs.live_datanodes) == sorted(
            set(range(4)) - set(doomed)
        )

    def test_job_fails_without_rereplication(self):
        fs = SimulatedHDFS(num_datanodes=4, block_size=16, replication=2, seed=0)
        job, inputs = self.make_job(fs)
        doomed = fs.stat("/blocks").blocks[0].replicas
        plan = FaultPlan(
            datanode_kills=[DatanodeKill("map_end", n) for n in doomed],
            auto_rereplicate=False,
        ).bind_hdfs(fs)
        with pytest.raises(HdfsError, match="replicas"):
            SerialRunner().run(
                job, inputs, JobConf(num_map_tasks=2, num_reduce_tasks=2),
                fault_plan=plan,
            )
