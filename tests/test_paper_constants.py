"""Table-driven verification that the dataset specs transcribe the
paper's published constants exactly."""

import pytest

from repro.datasets.environmental import SOGIN_SAMPLES
from repro.datasets.whole_metagenome import WHOLE_METAGENOME_SPECS

# Table I verbatim: (SID, depth m, temperature C, reads).
TABLE_I = [
    ("53R", 1400, 3.5, 11218),
    ("55R", 500, 7.1, 8680),
    ("112R", 4121, 2.3, 11132),
    ("115R", 550, 7.0, 13441),
    ("137", 1710, 3.0, 12259),
    ("138", 710, 3.5, 11554),
    ("FS312", 1529, 31.2, 52569),
    ("FS396", 1537, 24.4, 73657),
]

# Table II verbatim: (SID, #species, ratio string, reads, clusters).
TABLE_II = [
    ("S1", 2, "1:1", 49998, 2),
    ("S2", 2, "1:1", 49998, 2),
    ("S3", 2, "1:1", 49998, 2),
    ("S4", 2, "1:1", 49998, 2),
    ("S5", 2, "1:2", 49998, 2),
    ("S6", 2, "1:1", 49998, 2),
    ("S7", 2, "1:1", 49998, 2),
    ("S8", 2, "1:1", 49998, 2),
    ("S9", 3, "1:1:8", 49996, 3),
    ("S10", 3, "1:1:8", 49996, 3),
    ("S11", 4, "1:1:4:4", 99998, 4),
    ("S12", 6, "1:1:1:1:2:14", 99994, 6),
    ("S13", 2, "1:1", 4000, 2),
    ("S14", 3, "1:1:1", 6000, 3),
    ("R1", 3, None, 7137, None),
]

# Table II GC contents for selected organisms (the brackets).
TABLE_II_GC = {
    ("S1", "Bacillus halodurans"): 0.44,
    ("S1", "Bacillus subtilis"): 0.44,
    ("S2", "Gluconobacter oxydans"): 0.61,
    ("S2", "Granulobacter bethesdensis"): 0.59,
    ("S3", "Escherichia coli"): 0.51,
    ("S3", "Yersinia pestis"): 0.48,
    ("S5", "Bacillus anthracis"): 0.35,
    ("S5", "Listeria monocytogenes"): 0.38,
    ("S8", "Rhodospirillum rubrum"): 0.65,
    ("S10", "Pseudomonas putida"): 0.62,
    ("S12", "Thermofilum pendens"): 0.58,
    ("S12", "Bacillus subtilis"): 0.44,
}


class TestTableI:
    @pytest.mark.parametrize("sid,depth,temp,reads", TABLE_I)
    def test_row(self, sid, depth, temp, reads):
        spec = next(s for s in SOGIN_SAMPLES if s.sid == sid)
        assert spec.depth_m == depth
        assert spec.temperature_c == temp
        assert spec.num_reads == reads

    def test_total_reads(self):
        assert sum(s.num_reads for s in SOGIN_SAMPLES) == 194510


class TestTableII:
    @pytest.mark.parametrize("sid,n_species,ratio,reads,clusters", TABLE_II)
    def test_row(self, sid, n_species, ratio, reads, clusters):
        spec = next(s for s in WHOLE_METAGENOME_SPECS if s.sid == sid)
        assert len(spec.species) == n_species
        assert spec.num_reads == reads
        if ratio is not None:
            assert ":".join(str(int(sp.ratio)) for sp in spec.species) == ratio
        if clusters is not None:
            assert spec.num_clusters == clusters

    @pytest.mark.parametrize("key,gc", sorted(TABLE_II_GC.items()), ids=str)
    def test_gc_contents(self, key, gc):
        sid, organism = key
        spec = next(s for s in WHOLE_METAGENOME_SPECS if s.sid == sid)
        sp = next(s for s in spec.species if s.name == organism)
        assert sp.gc == gc

    def test_r1_has_no_truth(self):
        r1 = next(s for s in WHOLE_METAGENOME_SPECS if s.sid == "R1")
        assert not r1.has_truth
        assert r1.num_clusters is None

    def test_taxonomic_difficulty_monotone(self):
        """Branch divergences must order species < genus < family < order
        across the two-species samples, matching the Taxonomic Difference
        column."""
        def pair_divergence(sid):
            spec = next(s for s in WHOLE_METAGENOME_SPECS if s.sid == sid)
            return sum(sp.branch for sp in spec.species)

        assert pair_divergence("S1") < pair_divergence("S2")   # species < genus
        assert pair_divergence("S2") < pair_divergence("S5")   # genus < family
        assert pair_divergence("S5") < pair_divergence("S8")   # family < order
